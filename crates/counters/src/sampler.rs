//! Periodic counter sampling — the library form of HPX's
//! `--hpx:print-counter-interval`: a background thread snapshots a set of
//! counters at a fixed period, building a time series that can be
//! inspected while the application runs or dumped afterwards.
//!
//! This is the plumbing a *continuous* adaptation loop would use
//! (the epoch drivers in `grain-adaptive` sample at epoch boundaries
//! instead; both consume the same [`Snapshot`] machinery).

use crate::registry::Registry;
use crate::snapshot::Snapshot;
use crate::sync::Mutex;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// One timestamped snapshot.
#[derive(Debug, Clone)]
pub struct Sample {
    /// Time since the sampler started.
    pub elapsed: Duration,
    /// The captured counters.
    pub snapshot: Snapshot,
}

/// A background sampling thread over a [`Registry`].
pub struct Sampler {
    stop: Arc<AtomicBool>,
    samples: Arc<Mutex<Vec<Sample>>>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl Sampler {
    /// Start sampling every counter matching `pattern` each `period`.
    /// The registry must outlive the sampler (`Arc`).
    pub fn start(registry: Arc<Registry>, pattern: &str, period: Duration) -> Self {
        let stop = Arc::new(AtomicBool::new(false));
        let samples = Arc::new(Mutex::new(Vec::new()));
        let pattern = pattern.to_owned();
        let handle = {
            let stop = Arc::clone(&stop);
            let samples = Arc::clone(&samples);
            std::thread::Builder::new()
                .name("grain-counter-sampler".to_owned())
                .spawn(move || {
                    let epoch = Instant::now();
                    while !stop.load(Ordering::SeqCst) {
                        if let Ok(snapshot) = Snapshot::capture(&registry, &pattern) {
                            samples.lock().push(Sample {
                                elapsed: epoch.elapsed(),
                                snapshot,
                            });
                        }
                        std::thread::sleep(period);
                    }
                })
                .expect("failed to spawn sampler thread")
        };
        Self {
            stop,
            samples,
            handle: Some(handle),
        }
    }

    /// Samples collected so far (cheap clone of the series).
    pub fn samples(&self) -> Vec<Sample> {
        self.samples.lock().clone()
    }

    /// Stop the sampling thread and return the full series.
    pub fn stop(mut self) -> Vec<Sample> {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
        let out = self.samples.lock().clone();
        out
    }

    /// Extract the time series of one counter from collected samples, as
    /// `(seconds, value)` pairs.
    pub fn series(samples: &[Sample], path: &str) -> Vec<(f64, f64)> {
        samples
            .iter()
            .filter_map(|s| {
                s.snapshot
                    .get(path)
                    .map(|v| (s.elapsed.as_secs_f64(), v.value))
            })
            .collect()
    }
}

impl Drop for Sampler {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::raw::RawCounter;
    use crate::registry::RawView;
    use crate::value::Unit;

    fn registry_with_counter() -> (Arc<Registry>, Arc<RawCounter>) {
        let reg = Arc::new(Registry::new());
        let c = Arc::new(RawCounter::new());
        reg.register(
            "/threads/count/cumulative",
            RawView::new(Arc::clone(&c), Unit::Count),
        )
        .unwrap();
        (reg, c)
    }

    #[test]
    fn collects_monotone_series() {
        let (reg, c) = registry_with_counter();
        let sampler = Sampler::start(reg, "/threads/count/*", Duration::from_millis(5));
        for _ in 0..10 {
            c.add(7);
            std::thread::sleep(Duration::from_millis(5));
        }
        let samples = sampler.stop();
        assert!(samples.len() >= 3, "got {} samples", samples.len());
        let series = Sampler::series(&samples, "/threads/count/cumulative");
        assert_eq!(series.len(), samples.len());
        assert!(series.windows(2).all(|w| w[0].1 <= w[1].1), "monotone");
        assert!(series.windows(2).all(|w| w[0].0 < w[1].0), "time advances");
        assert!(series.last().unwrap().1 > 0.0);
    }

    #[test]
    fn samples_accessible_while_running() {
        let (reg, c) = registry_with_counter();
        let sampler = Sampler::start(reg, "/threads/count/*", Duration::from_millis(2));
        c.add(1);
        std::thread::sleep(Duration::from_millis(20));
        assert!(!sampler.samples().is_empty());
        drop(sampler); // Drop path must join cleanly too.
    }

    #[test]
    fn missing_pattern_yields_empty_snapshots() {
        let (reg, _c) = registry_with_counter();
        let sampler = Sampler::start(reg, "/nothing/here", Duration::from_millis(2));
        std::thread::sleep(Duration::from_millis(10));
        let samples = sampler.stop();
        assert!(samples.iter().all(|s| s.snapshot.is_empty()));
    }
}
