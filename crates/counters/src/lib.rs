//! # grain-counters — first-class performance counters
//!
//! This crate reproduces the *performance monitoring system* of the HPX
//! runtime as described in §I-B of Grubel et al., *"The Performance
//! Implication of Task Size for Applications on the HPX Runtime System"*
//! (CLUSTER 2015): counters are first-class objects, each addressed by a
//! symbolic path, discoverable and queryable at runtime by the application
//! or by the runtime system itself for introspection and adaptation.
//!
//! A counter path follows the HPX convention
//!
//! ```text
//! /object{instance}/name@parameters
//! ```
//!
//! for example `/threads{locality#0/worker-thread#3}/idle-rate` or
//! `/threads{locality#0/total}/count/cumulative`.
//!
//! The pieces:
//!
//! * [`path::CounterPath`] — parsed symbolic counter names.
//! * [`raw`] — lock-free primitive counters: monotonically increasing
//!   event counts and nanosecond time sums, with cache-line-padded
//!   per-worker sharding ([`raw::Sharded`]) so hot-path increments never
//!   contend.
//! * [`value::CounterValue`] — a typed sample (count / nanoseconds /
//!   ratio / bytes) with the timestamp it was taken at.
//! * [`registry::Registry`] — maps paths to live counters; supports exact
//!   queries, wildcard discovery, and reset, like HPX's counter service.
//! * [`derived`] — counters computed on demand from other counters
//!   (averages, rates, differences); this is how `/threads/idle-rate`,
//!   `/threads/time/average` and `/threads/time/average-overhead` are
//!   implemented, mirroring Eqs. 1–3 of the paper.
//! * [`snapshot`] — point-in-time captures of a whole counter set and
//!   interval deltas between two captures, the building block for
//!   *dynamic* measurements over any interval of interest (§II-A of the
//!   paper notes all metrics can be computed over intervals).
//!
//! The crate is self-contained (no dependency on the runtime) so that both
//! the native thread pool in `grain-runtime` and the discrete-event
//! simulator in `grain-sim` expose the *same* counter surface.
//!
//! ## Example
//!
//! ```
//! use grain_counters::prelude::*;
//! use std::sync::Arc;
//!
//! // A runtime would create one shard per worker thread.
//! let exec_time = Arc::new(Sharded::new(4));
//! let tasks = Arc::new(Sharded::new(4));
//!
//! // Hot path: worker 2 retires a task that ran 1500 ns.
//! exec_time.add(2, 1500);
//! tasks.add(2, 1);
//!
//! let registry = Registry::new();
//! registry
//!     .register(
//!         "/threads{locality#0/total}/time/average",
//!         average_of(exec_time.clone(), tasks.clone(), Unit::Nanoseconds),
//!     )
//!     .unwrap();
//!
//! let v = registry.query("/threads{locality#0/total}/time/average").unwrap();
//! assert_eq!(v.value, 1500.0);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod derived;
pub mod fault;
pub mod histogram;
pub mod path;
pub mod raw;
pub mod registry;
pub mod rng;
pub mod sampler;
pub mod snapshot;
pub mod stats;
pub mod sync;
pub mod threads;
pub mod value;

pub use derived::{average_of, ratio_of, DerivedCounter};
pub use fault::{FaultAction, FaultPlan};
pub use histogram::LogHistogram;
pub use path::CounterPath;
pub use raw::{RawCounter, Sharded};
pub use registry::{Counter, Registry, RegistryError, ScopedRegistry};
pub use rng::Pcg32;
pub use sampler::{Sample, Sampler};
pub use snapshot::{Interval, Snapshot};
pub use stats::SampleStats;
pub use threads::ThreadCounters;
pub use value::{CounterValue, Unit};

/// Convenient glob import for consumers of this crate.
pub mod prelude {
    pub use crate::derived::{average_of, ratio_of, DerivedCounter};
    pub use crate::path::CounterPath;
    pub use crate::raw::{RawCounter, Sharded};
    pub use crate::registry::{Counter, Registry, RegistryError, ScopedRegistry};
    pub use crate::snapshot::{Interval, Snapshot};
    pub use crate::stats::SampleStats;
    pub use crate::value::{CounterValue, Unit};
}

/// Canonical counter names used throughout the project. These are the
/// counters named in the paper (§II-A), kept in one place so the runtime,
/// the simulator and the experiment harness agree on spelling.
pub mod names {
    /// Ratio of thread-management overhead to total time (Eq. 1).
    pub const IDLE_RATE: &str = "/threads/idle-rate";
    /// Average task execution (computation) time (Eq. 2).
    pub const TIME_AVERAGE: &str = "/threads/time/average";
    /// Average per-task thread-management overhead (Eq. 3).
    pub const TIME_AVERAGE_OVERHEAD: &str = "/threads/time/average-overhead";
    /// Cumulative number of HPX-threads (tasks) executed.
    pub const COUNT_CUMULATIVE: &str = "/threads/count/cumulative";
    /// Cumulative number of thread phases (activations) executed.
    pub const COUNT_CUMULATIVE_PHASES: &str = "/threads/count/cumulative-phases";
    /// Average execution time of one thread phase.
    pub const TIME_AVERAGE_PHASE: &str = "/threads/time/average-phase";
    /// Average overhead of one thread phase.
    pub const TIME_AVERAGE_PHASE_OVERHEAD: &str = "/threads/time/average-phase-overhead";
    /// Number of times the scheduler looked for work in pending queues.
    pub const PENDING_ACCESSES: &str = "/threads/count/pending-accesses";
    /// Number of times a pending-queue probe found no work.
    pub const PENDING_MISSES: &str = "/threads/count/pending-misses";
    /// Number of times the scheduler looked for work in staged queues.
    pub const STAGED_ACCESSES: &str = "/threads/count/staged-accesses";
    /// Number of times a staged-queue probe found no work.
    pub const STAGED_MISSES: &str = "/threads/count/staged-misses";
    /// Cumulative running sum of task execution time (Σ t_exec).
    pub const TIME_CUMULATIVE_EXEC: &str = "/threads/time/cumulative-exec";
    /// Cumulative running sum of task completion time (Σ t_func).
    pub const TIME_CUMULATIVE_FUNC: &str = "/threads/time/cumulative-func";
    /// Number of tasks stolen from another worker's queues.
    pub const COUNT_STOLEN: &str = "/threads/count/stolen";
    /// Number of staged descriptors converted into runnable tasks.
    pub const COUNT_CONVERTED: &str = "/threads/count/converted";
}
