//! Dependency-free synchronization primitives.
//!
//! Thin wrappers over `std::sync` exposing the ergonomic API the
//! workspace previously took from `parking_lot`: `lock()`/`read()`/
//! `write()` return guards directly (lock poisoning is recovered — a
//! panicked writer leaves counters merely stale, never unsound), and
//! [`Condvar::wait`]/[`Condvar::wait_for`] take the guard by `&mut`
//! reference. Every crate in the workspace synchronizes through this
//! module so tier-1 builds need nothing outside the standard library.

use std::sync::PoisonError;
use std::time::Duration;

/// Recover the guard (or value) from a possibly-poisoned lock result.
///
/// This is the single place the workspace converts `PoisonError` into a
/// usable guard: a panic inside a task must never cascade into
/// `lock().unwrap()` panics on every other thread touching shared
/// scheduler state. All wrappers in this module go through it, and code
/// that must use `std::sync` primitives directly (e.g. inside a
/// `Condvar::wait` loop) should call it instead of `.unwrap()`.
pub fn lock_or_recover<G>(result: Result<G, PoisonError<G>>) -> G {
    result.unwrap_or_else(PoisonError::into_inner)
}

/// Mutual exclusion, recovering from poisoning.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

/// Guard returned by [`Mutex::lock`].
pub struct MutexGuard<'a, T: ?Sized> {
    // `Option` so `Condvar` can temporarily take the inner guard out
    // (std's `wait` consumes the guard and returns it back).
    inner: Option<std::sync::MutexGuard<'a, T>>,
}

impl<T> Mutex<T> {
    /// A new mutex around `value`.
    pub const fn new(value: T) -> Self {
        Self(std::sync::Mutex::new(value))
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard {
            inner: Some(lock_or_recover(self.0.lock())),
        }
    }
}

impl<T: ?Sized> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard taken by condvar wait")
    }
}

impl<T: ?Sized> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard taken by condvar wait")
    }
}

/// Condition variable pairing with [`Mutex`].
#[derive(Debug, Default)]
pub struct Condvar(std::sync::Condvar);

impl Condvar {
    /// A new condition variable.
    pub const fn new() -> Self {
        Self(std::sync::Condvar::new())
    }

    /// Wake one waiter.
    pub fn notify_one(&self) {
        self.0.notify_one();
    }

    /// Wake every waiter.
    pub fn notify_all(&self) {
        self.0.notify_all();
    }

    /// Block until notified, releasing the guard while waiting.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let inner = guard.inner.take().expect("guard taken by condvar wait");
        let inner = lock_or_recover(self.0.wait(inner));
        guard.inner = Some(inner);
    }

    /// Block until notified or `timeout` elapses. Returns `true` if the
    /// wait timed out.
    pub fn wait_for<T>(&self, guard: &mut MutexGuard<'_, T>, timeout: Duration) -> bool {
        let inner = guard.inner.take().expect("guard taken by condvar wait");
        let (inner, res) = lock_or_recover(self.0.wait_timeout(inner, timeout));
        guard.inner = Some(inner);
        res.timed_out()
    }
}

/// Reader-writer lock, recovering from poisoning.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

impl<T> RwLock<T> {
    /// A new lock around `value`.
    pub const fn new(value: T) -> Self {
        Self(std::sync::RwLock::new(value))
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read guard.
    pub fn read(&self) -> std::sync::RwLockReadGuard<'_, T> {
        lock_or_recover(self.0.read())
    }

    /// Acquire an exclusive write guard.
    pub fn write(&self) -> std::sync::RwLockWriteGuard<'_, T> {
        lock_or_recover(self.0.write())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_basic() {
        let m = Mutex::new(1);
        *m.lock() += 41;
        assert_eq!(*m.lock(), 42);
    }

    #[test]
    fn mutex_recovers_from_poison() {
        let m = Arc::new(Mutex::new(0));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison the lock");
        })
        .join();
        *m.lock() = 7; // must not panic
        assert_eq!(*m.lock(), 7);
    }

    #[test]
    fn condvar_wait_and_notify() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = Arc::clone(&pair);
        let t = std::thread::spawn(move || {
            let (lock, cv) = &*p2;
            let mut g = lock.lock();
            while !*g {
                cv.wait(&mut g);
            }
            *g
        });
        std::thread::sleep(Duration::from_millis(10));
        let (lock, cv) = &*pair;
        *lock.lock() = true;
        cv.notify_all();
        assert!(t.join().unwrap());
    }

    #[test]
    fn condvar_wait_for_times_out() {
        let lock = Mutex::new(());
        let cv = Condvar::new();
        let mut g = lock.lock();
        assert!(cv.wait_for(&mut g, Duration::from_millis(5)));
    }

    #[test]
    fn rwlock_many_readers_one_writer() {
        let l = RwLock::new(5);
        {
            let a = l.read();
            let b = l.read();
            assert_eq!(*a + *b, 10);
        }
        *l.write() = 6;
        assert_eq!(*l.read(), 6);
    }
}
