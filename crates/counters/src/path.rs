//! Symbolic counter paths.
//!
//! HPX addresses every performance counter with a symbolic name of the form
//!
//! ```text
//! /objectname{full_instancename}/countername@parameters
//! ```
//!
//! e.g. `/threads{locality#0/worker-thread#1}/idle-rate`. This module
//! implements a parser and formatter for that grammar, restricted to the
//! pieces the paper's study actually uses: an object, an optional instance,
//! a multi-segment counter name and an optional parameter string.

use std::fmt;
use std::str::FromStr;

/// A parsed counter path.
///
/// ```
/// use grain_counters::CounterPath;
///
/// let p: CounterPath = "/threads{locality#0/worker-thread#1}/idle-rate"
///     .parse()
///     .unwrap();
/// assert_eq!(p.object, "threads");
/// assert_eq!(p.instance.as_deref(), Some("locality#0/worker-thread#1"));
/// assert_eq!(p.name, "idle-rate");
/// assert_eq!(p.to_string(), "/threads{locality#0/worker-thread#1}/idle-rate");
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct CounterPath {
    /// The performance object, e.g. `threads`.
    pub object: String,
    /// Optional instance qualifier, e.g. `locality#0/worker-thread#1` or
    /// `locality#0/total`.
    pub instance: Option<String>,
    /// The counter name below the object, e.g. `idle-rate` or
    /// `count/cumulative` (may contain `/`).
    pub name: String,
    /// Optional parameter suffix introduced by `@`.
    pub parameters: Option<String>,
}

/// Error produced when a counter path cannot be parsed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PathError {
    msg: String,
}

impl PathError {
    fn new(msg: impl Into<String>) -> Self {
        Self { msg: msg.into() }
    }
}

impl fmt::Display for PathError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid counter path: {}", self.msg)
    }
}

impl std::error::Error for PathError {}

impl CounterPath {
    /// Build a path from an object and a counter name, with no instance.
    pub fn new(object: impl Into<String>, name: impl Into<String>) -> Self {
        Self {
            object: object.into(),
            instance: None,
            name: name.into(),
            parameters: None,
        }
    }

    /// Return a copy of this path with the given instance qualifier.
    #[must_use]
    pub fn with_instance(mut self, instance: impl Into<String>) -> Self {
        self.instance = Some(instance.into());
        self
    }

    /// Return a copy of this path with the given `@parameters` suffix.
    #[must_use]
    pub fn with_parameters(mut self, parameters: impl Into<String>) -> Self {
        self.parameters = Some(parameters.into());
        self
    }

    /// The path with the instance qualifier removed:
    /// `/threads{locality#0/total}/idle-rate` → `/threads/idle-rate`.
    ///
    /// Useful for grouping per-worker instances of the same counter.
    pub fn base(&self) -> CounterPath {
        CounterPath {
            object: self.object.clone(),
            instance: None,
            name: self.name.clone(),
            parameters: self.parameters.clone(),
        }
    }

    /// True if this path denotes the aggregate (`total`) instance or has no
    /// instance qualifier at all.
    pub fn is_total(&self) -> bool {
        match &self.instance {
            None => true,
            Some(i) => i.ends_with("/total") || i == "total",
        }
    }

    /// Prefix naming locality `id` in an instance qualifier (the HPX
    /// locality namespace the multi-locality layer populates):
    /// `locality_prefix(3)` → `"locality#3"`. Every instance string in
    /// the project is built from this helper so non-root localities get
    /// correct counter paths.
    pub fn locality_prefix(id: usize) -> String {
        format!("locality#{id}")
    }

    /// Instance string for worker `w` on locality 0, the single-locality
    /// convention used before the distribution layer existed.
    pub fn worker_instance(w: usize) -> String {
        Self::worker_instance_for(0, w)
    }

    /// Instance string for worker `w` on locality `locality`.
    pub fn worker_instance_for(locality: usize, w: usize) -> String {
        format!("{}/worker-thread#{w}", Self::locality_prefix(locality))
    }

    /// Instance string for the aggregate over all workers on locality 0.
    pub fn total_instance() -> String {
        Self::total_instance_for(0)
    }

    /// Instance string for the aggregate over all workers on locality
    /// `locality`.
    pub fn total_instance_for(locality: usize) -> String {
        format!("{}/total", Self::locality_prefix(locality))
    }

    /// True if `self` (possibly containing a trailing `*` wildcard in its
    /// name) matches `other`. Only the counter *name* may carry a wildcard;
    /// objects must match exactly and an absent instance acts as a wildcard
    /// over instances.
    pub fn matches(&self, other: &CounterPath) -> bool {
        if self.object != other.object {
            return false;
        }
        if let Some(inst) = &self.instance {
            if other.instance.as_deref() != Some(inst.as_str()) {
                return false;
            }
        }
        if let Some(prefix) = self.name.strip_suffix('*') {
            other.name.starts_with(prefix)
        } else {
            self.name == other.name
        }
    }
}

impl FromStr for CounterPath {
    type Err = PathError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let rest = s
            .strip_prefix('/')
            .ok_or_else(|| PathError::new(format!("`{s}` must start with '/'")))?;

        // Split the object (and optional {instance}) from the counter name.
        let (object, instance, name_part) = if let Some(brace) = rest.find('{') {
            let object = &rest[..brace];
            let close = rest
                .find('}')
                .ok_or_else(|| PathError::new(format!("`{s}` has unterminated '{{'")))?;
            if close < brace {
                return Err(PathError::new(format!("`{s}` has '}}' before '{{'")));
            }
            let instance = &rest[brace + 1..close];
            let tail = rest[close + 1..]
                .strip_prefix('/')
                .ok_or_else(|| PathError::new(format!("`{s}` missing '/' after instance")))?;
            (object, Some(instance), tail)
        } else {
            let slash = rest
                .find('/')
                .ok_or_else(|| PathError::new(format!("`{s}` missing counter name")))?;
            (&rest[..slash], None, &rest[slash + 1..])
        };

        if object.is_empty() {
            return Err(PathError::new(format!("`{s}` has empty object")));
        }

        let (name, parameters) = match name_part.split_once('@') {
            Some((n, p)) => (n, Some(p.to_owned())),
            None => (name_part, None),
        };
        if name.is_empty() {
            return Err(PathError::new(format!("`{s}` has empty counter name")));
        }

        Ok(CounterPath {
            object: object.to_owned(),
            instance: instance.map(str::to_owned),
            name: name.to_owned(),
            parameters,
        })
    }
}

impl fmt::Display for CounterPath {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "/{}", self.object)?;
        if let Some(inst) = &self.instance {
            write!(f, "{{{inst}}}")?;
        }
        write!(f, "/{}", self.name)?;
        if let Some(p) = &self.parameters {
            write!(f, "@{p}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_bare_path() {
        let p: CounterPath = "/threads/idle-rate".parse().unwrap();
        assert_eq!(p.object, "threads");
        assert_eq!(p.instance, None);
        assert_eq!(p.name, "idle-rate");
        assert_eq!(p.parameters, None);
    }

    #[test]
    fn parses_instance() {
        let p: CounterPath = "/threads{locality#0/total}/count/cumulative"
            .parse()
            .unwrap();
        assert_eq!(p.object, "threads");
        assert_eq!(p.instance.as_deref(), Some("locality#0/total"));
        assert_eq!(p.name, "count/cumulative");
        assert!(p.is_total());
    }

    #[test]
    fn parses_parameters() {
        let p: CounterPath = "/threads/idle-rate@interval=100ms".parse().unwrap();
        assert_eq!(p.parameters.as_deref(), Some("interval=100ms"));
    }

    #[test]
    fn roundtrips_display() {
        for s in [
            "/threads/idle-rate",
            "/threads{locality#0/worker-thread#7}/time/average",
            "/threads{locality#0/total}/count/pending-accesses",
            "/threads/idle-rate@window=5",
        ] {
            let p: CounterPath = s.parse().unwrap();
            assert_eq!(p.to_string(), s);
        }
    }

    #[test]
    fn rejects_malformed() {
        for s in [
            "threads/idle-rate",
            "/threads",
            "//idle-rate",
            "/threads{unterminated/idle-rate",
            "/threads{x}no-slash",
            "/threads/",
        ] {
            assert!(s.parse::<CounterPath>().is_err(), "should reject `{s}`");
        }
    }

    #[test]
    fn multi_segment_name_without_instance() {
        let p: CounterPath = "/threads/count/pending-misses".parse().unwrap();
        assert_eq!(p.name, "count/pending-misses");
    }

    #[test]
    fn wildcard_matching() {
        let pat: CounterPath = "/threads/count/*".parse().unwrap();
        let a: CounterPath = "/threads/count/cumulative".parse().unwrap();
        let b: CounterPath = "/threads/time/average".parse().unwrap();
        assert!(pat.matches(&a));
        assert!(!pat.matches(&b));
    }

    #[test]
    fn instance_wildcard_matching() {
        let pat: CounterPath = "/threads/idle-rate".parse().unwrap();
        let inst: CounterPath = "/threads{locality#0/worker-thread#1}/idle-rate"
            .parse()
            .unwrap();
        // pattern without instance matches any instance…
        assert!(pat.matches(&inst));
        // …but a pattern with an instance requires that exact instance.
        assert!(!inst.matches(&pat));
    }

    #[test]
    fn base_strips_instance() {
        let p: CounterPath = "/threads{locality#0/worker-thread#1}/idle-rate"
            .parse()
            .unwrap();
        assert_eq!(p.base().to_string(), "/threads/idle-rate");
    }

    #[test]
    fn worker_instance_formatting() {
        assert_eq!(
            CounterPath::worker_instance(3),
            "locality#0/worker-thread#3"
        );
        assert_eq!(CounterPath::total_instance(), "locality#0/total");
    }

    #[test]
    fn locality_parameterized_instances() {
        assert_eq!(CounterPath::locality_prefix(7), "locality#7");
        assert_eq!(CounterPath::total_instance_for(2), "locality#2/total");
        assert_eq!(
            CounterPath::worker_instance_for(2, 5),
            "locality#2/worker-thread#5"
        );
        // Locality 0 helpers stay the historical single-locality strings.
        assert_eq!(
            CounterPath::total_instance_for(0),
            CounterPath::total_instance()
        );
        assert_eq!(
            CounterPath::worker_instance_for(0, 3),
            CounterPath::worker_instance(3)
        );
    }
}
