//! Derived (computed) counters.
//!
//! The paper's headline counters are not raw event counts but functions of
//! them:
//!
//! * `/threads/idle-rate`        = `(Σt_func − Σt_exec) / Σt_func`   (Eq. 1)
//! * `/threads/time/average`     = `Σt_exec / n_t`                    (Eq. 2)
//! * `/threads/time/average-overhead` = `(Σt_func − Σt_exec) / n_t`   (Eq. 3)
//!
//! [`DerivedCounter`] wraps an arbitrary closure over live counters;
//! [`average_of`] and [`ratio_of`] cover the two recurring shapes.

use crate::raw::Sharded;
use crate::registry::Counter;
use crate::value::{CounterValue, Unit};
use std::sync::Arc;

/// A counter whose value is computed on demand from other live state.
pub struct DerivedCounter {
    unit: Unit,
    compute: Box<dyn Fn() -> f64 + Send + Sync>,
}

impl DerivedCounter {
    /// Build a derived counter from a closure. The closure is invoked on
    /// every [`Counter::value`] call; it should be cheap (a handful of
    /// relaxed loads).
    pub fn new(unit: Unit, compute: impl Fn() -> f64 + Send + Sync + 'static) -> Self {
        Self {
            unit,
            compute: Box::new(compute),
        }
    }
}

impl Counter for DerivedCounter {
    fn value(&self) -> CounterValue {
        CounterValue::now((self.compute)(), self.unit)
    }
    fn reset(&self) {
        // Pure view: resetting the inputs is the owner's job.
    }
}

/// `numerator.sum() / denominator.sum()`, or 0 when the denominator is
/// zero. With `unit = Nanoseconds` this is the "average time per event"
/// shape used by `/threads/time/average` (Eq. 2) and
/// `/threads/time/average-overhead` (Eq. 3).
pub fn average_of(
    numerator: Arc<Sharded>,
    denominator: Arc<Sharded>,
    unit: Unit,
) -> DerivedCounter {
    DerivedCounter::new(unit, move || {
        let d = denominator.sum();
        if d == 0 {
            0.0
        } else {
            numerator.sum() as f64 / d as f64
        }
    })
}

/// `(whole.sum() − part.sum()) / whole.sum()` clamped to `[0, 1]`, or 0
/// when `whole` is zero. With `whole = Σt_func` and `part = Σt_exec` this
/// is exactly the idle-rate of Eq. 1.
pub fn ratio_of(part: Arc<Sharded>, whole: Arc<Sharded>) -> DerivedCounter {
    DerivedCounter::new(Unit::Ratio, move || {
        let w = whole.sum();
        if w == 0 {
            0.0
        } else {
            let p = part.sum().min(w);
            (w - p) as f64 / w as f64
        }
    })
}

/// Per-worker variant of [`average_of`]: uses only shard `w`.
pub fn average_of_worker(
    numerator: Arc<Sharded>,
    denominator: Arc<Sharded>,
    w: usize,
    unit: Unit,
) -> DerivedCounter {
    DerivedCounter::new(unit, move || {
        let d = denominator.get(w);
        if d == 0 {
            0.0
        } else {
            numerator.get(w) as f64 / d as f64
        }
    })
}

/// Per-worker variant of [`ratio_of`]: uses only shard `w`.
pub fn ratio_of_worker(part: Arc<Sharded>, whole: Arc<Sharded>, w: usize) -> DerivedCounter {
    DerivedCounter::new(Unit::Ratio, move || {
        let total = whole.get(w);
        if total == 0 {
            0.0
        } else {
            let p = part.get(w).min(total);
            (total - p) as f64 / total as f64
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn average_handles_zero_denominator() {
        let num = Arc::new(Sharded::new(1));
        let den = Arc::new(Sharded::new(1));
        let avg = average_of(Arc::clone(&num), Arc::clone(&den), Unit::Nanoseconds);
        assert_eq!(avg.value().value, 0.0);
        num.add(0, 300);
        den.add(0, 3);
        assert_eq!(avg.value().value, 100.0);
    }

    #[test]
    fn idle_rate_matches_eq1() {
        // Σt_func = 1000, Σt_exec = 600 → idle-rate = 0.4.
        let exec = Arc::new(Sharded::new(2));
        let func = Arc::new(Sharded::new(2));
        exec.add(0, 400);
        exec.add(1, 200);
        func.add(0, 500);
        func.add(1, 500);
        let ir = ratio_of(Arc::clone(&exec), Arc::clone(&func));
        let v = ir.value();
        assert_eq!(v.unit, Unit::Ratio);
        assert!((v.value - 0.4).abs() < 1e-12);
    }

    #[test]
    fn idle_rate_clamps_when_exec_exceeds_func() {
        // Counter skew can transiently make Σt_exec > Σt_func; the ratio
        // must clamp at 0 rather than go negative.
        let exec = Arc::new(Sharded::new(1));
        let func = Arc::new(Sharded::new(1));
        exec.add(0, 1200);
        func.add(0, 1000);
        let ir = ratio_of(exec, func);
        assert_eq!(ir.value().value, 0.0);
    }

    #[test]
    fn per_worker_views_ignore_other_shards() {
        let num = Arc::new(Sharded::new(2));
        let den = Arc::new(Sharded::new(2));
        num.add(0, 100);
        den.add(0, 1);
        num.add(1, 900);
        den.add(1, 3);
        let w1 = average_of_worker(Arc::clone(&num), Arc::clone(&den), 1, Unit::Nanoseconds);
        assert_eq!(w1.value().value, 300.0);
        let r0 = ratio_of_worker(Arc::clone(&num), Arc::clone(&num), 0);
        assert_eq!(r0.value().value, 0.0);
    }

    #[test]
    fn custom_closure_counter() {
        let c = DerivedCounter::new(Unit::Count, || 42.0);
        assert_eq!(c.value().as_count(), 42);
        c.reset(); // no-op, must not panic
        assert_eq!(c.value().as_count(), 42);
    }
}
