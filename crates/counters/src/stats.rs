//! Sample statistics: mean, standard deviation, coefficient of variation.
//!
//! §II of the paper: *"we make multiple runs and calculate means and
//! standard deviation of these counts"*, and §IV reports the coefficient of
//! variation (COV = stddev / mean) for every sample set. This module
//! provides a single-pass, numerically-stable (Welford) accumulator used by
//! the experiment harness for its 10-sample runs.

/// Streaming mean/variance accumulator (Welford's algorithm).
#[derive(Debug, Clone, Default)]
pub struct SampleStats {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl SampleStats {
    /// Empty accumulator.
    pub fn new() -> Self {
        Self {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Accumulate all values from an iterator.
    #[allow(clippy::should_implement_trait)]
    pub fn from_iter(values: impl IntoIterator<Item = f64>) -> Self {
        let mut s = Self::new();
        for v in values {
            s.push(v);
        }
        s
    }

    /// Add one sample.
    pub fn push(&mut self, value: f64) {
        self.n += 1;
        let delta = value - self.mean;
        self.mean += delta / self.n as f64;
        let delta2 = value - self.mean;
        self.m2 += delta * delta2;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Merge another accumulator into this one (parallel reduction).
    pub fn merge(&mut self, other: &SampleStats) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = other.clone();
            return;
        }
        let n1 = self.n as f64;
        let n2 = other.n as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.n += other.n;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Sample mean. Zero when empty.
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Sample (n−1) standard deviation. Zero with fewer than two samples.
    pub fn stddev(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            (self.m2 / (self.n - 1) as f64).sqrt()
        }
    }

    /// Coefficient of variation (stddev / mean). Zero when the mean is 0.
    pub fn cov(&self) -> f64 {
        let m = self.mean();
        if m == 0.0 {
            0.0
        } else {
            self.stddev() / m.abs()
        }
    }

    /// Smallest sample seen. Zero when empty.
    pub fn min(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.min
        }
    }

    /// Largest sample seen. Zero when empty.
    pub fn max(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.max
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_stats_are_zero() {
        let s = SampleStats::new();
        assert_eq!(s.count(), 0);
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.stddev(), 0.0);
        assert_eq!(s.cov(), 0.0);
        assert_eq!(s.min(), 0.0);
        assert_eq!(s.max(), 0.0);
    }

    #[test]
    fn known_values() {
        // mean 5, sample stddev sqrt(10/4) for {2,4,4,5,5,10}? use a simple
        // hand-checked set: {2, 4, 6} → mean 4, var (4+0+4)/2 = 4, sd 2.
        let s = SampleStats::from_iter([2.0, 4.0, 6.0]);
        assert_eq!(s.count(), 3);
        assert!((s.mean() - 4.0).abs() < 1e-12);
        assert!((s.stddev() - 2.0).abs() < 1e-12);
        assert!((s.cov() - 0.5).abs() < 1e-12);
        assert_eq!(s.min(), 2.0);
        assert_eq!(s.max(), 6.0);
    }

    #[test]
    fn single_sample_has_zero_stddev() {
        let s = SampleStats::from_iter([3.5]);
        assert_eq!(s.mean(), 3.5);
        assert_eq!(s.stddev(), 0.0);
    }

    #[test]
    fn merge_equals_sequential() {
        let data: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 10.0 + 20.0).collect();
        let whole = SampleStats::from_iter(data.iter().copied());
        let mut a = SampleStats::from_iter(data[..37].iter().copied());
        let b = SampleStats::from_iter(data[37..].iter().copied());
        a.merge(&b);
        assert_eq!(a.count(), whole.count());
        assert!((a.mean() - whole.mean()).abs() < 1e-9);
        assert!((a.stddev() - whole.stddev()).abs() < 1e-9);
        assert_eq!(a.min(), whole.min());
        assert_eq!(a.max(), whole.max());
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut s = SampleStats::from_iter([1.0, 2.0]);
        let before = s.clone();
        s.merge(&SampleStats::new());
        assert_eq!(s.mean(), before.mean());
        let mut e = SampleStats::new();
        e.merge(&before);
        assert_eq!(e.mean(), before.mean());
        assert_eq!(e.count(), 2);
    }

    #[test]
    fn numerically_stable_for_large_offsets() {
        // Values with a huge common offset: naive two-pass sum-of-squares
        // would lose all precision here.
        let base = 1e12;
        let s = SampleStats::from_iter([base + 1.0, base + 2.0, base + 3.0]);
        assert!((s.stddev() - 1.0).abs() < 1e-6);
    }
}
