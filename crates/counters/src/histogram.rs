//! Log-scale duration histograms.
//!
//! The scalar counters give averages (Eqs. 2–3); distributions matter
//! too — the paper's COV analysis and its note that timer overhead only
//! matters "where task durations were less than four microseconds" are
//! both statements about the *shape* of the task-duration distribution.
//! [`LogHistogram`] records values into power-of-two buckets with relaxed
//! atomics (hot-path safe), supports per-worker sharding through one
//! instance per worker or a single shared instance, and answers
//! count/percentile/mean queries.

use std::sync::atomic::{AtomicU64, Ordering};

/// Number of power-of-two buckets: bucket `i` holds values in
/// `[2^i, 2^(i+1))`, bucket 0 holds 0 and 1. 64 buckets cover any `u64`.
const BUCKETS: usize = 64;

/// A lock-free histogram over `u64` values (nanoseconds, counts, …) with
/// power-of-two buckets.
#[derive(Debug)]
pub struct LogHistogram {
    buckets: Box<[AtomicU64; BUCKETS]>,
    count: AtomicU64,
    sum: AtomicU64,
}

impl Default for LogHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LogHistogram {
    /// Empty histogram.
    pub fn new() -> Self {
        Self {
            buckets: Box::new([const { AtomicU64::new(0) }; BUCKETS]),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }
    }

    fn bucket_of(value: u64) -> usize {
        (64 - value.max(1).leading_zeros() as usize - 1).min(BUCKETS - 1)
    }

    /// Record one value.
    #[inline]
    pub fn record(&self, value: u64) {
        self.buckets[Self::bucket_of(value)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
    }

    /// Number of recorded values.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Mean of recorded values (0 when empty).
    pub fn mean(&self) -> f64 {
        let n = self.count();
        if n == 0 {
            0.0
        } else {
            self.sum.load(Ordering::Relaxed) as f64 / n as f64
        }
    }

    /// Lower bound of the bucket containing the `q`-quantile
    /// (`0.0 ≤ q ≤ 1.0`), e.g. `quantile_floor(0.5)` for a median
    /// estimate. Returns 0 when empty. Resolution is one power of two.
    pub fn quantile_floor(&self, q: f64) -> u64 {
        let n = self.count();
        if n == 0 {
            return 0;
        }
        let target = ((q.clamp(0.0, 1.0) * n as f64).ceil() as u64).max(1);
        let mut seen = 0;
        for (i, b) in self.buckets.iter().enumerate() {
            seen += b.load(Ordering::Relaxed);
            if seen >= target {
                return if i == 0 { 0 } else { 1u64 << i };
            }
        }
        1u64 << (BUCKETS - 1)
    }

    /// Values recorded in `[2^i, 2^(i+1))` for every non-empty bucket,
    /// as `(bucket_floor, count)` pairs.
    pub fn nonzero_buckets(&self) -> Vec<(u64, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .filter_map(|(i, b)| {
                let c = b.load(Ordering::Relaxed);
                if c == 0 {
                    None
                } else {
                    Some((if i == 0 { 0 } else { 1u64 << i }, c))
                }
            })
            .collect()
    }

    /// Merge another histogram into this one.
    pub fn merge(&self, other: &LogHistogram) {
        for (a, b) in self.buckets.iter().zip(other.buckets.iter()) {
            a.fetch_add(b.load(Ordering::Relaxed), Ordering::Relaxed);
        }
        self.count
            .fetch_add(other.count.load(Ordering::Relaxed), Ordering::Relaxed);
        self.sum
            .fetch_add(other.sum.load(Ordering::Relaxed), Ordering::Relaxed);
    }

    /// Reset to empty.
    pub fn reset(&self) {
        for b in self.buckets.iter() {
            b.store(0, Ordering::Relaxed);
        }
        self.count.store(0, Ordering::Relaxed);
        self.sum.store(0, Ordering::Relaxed);
    }

    /// Render a compact text bar chart of the non-empty range (for the
    /// examples and reports). `width` is the maximum bar length.
    pub fn render(&self, unit: &str, width: usize) -> String {
        let buckets = self.nonzero_buckets();
        let max = buckets.iter().map(|&(_, c)| c).max().unwrap_or(0);
        let mut out = String::new();
        for (floor, count) in buckets {
            let bar = if max == 0 {
                0
            } else {
                ((count as f64 / max as f64) * width as f64).ceil() as usize
            };
            out.push_str(&format!(
                "{:>12} {unit} | {:<width$} {count}\n",
                floor,
                "#".repeat(bar),
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_assignment() {
        assert_eq!(LogHistogram::bucket_of(0), 0);
        assert_eq!(LogHistogram::bucket_of(1), 0);
        assert_eq!(LogHistogram::bucket_of(2), 1);
        assert_eq!(LogHistogram::bucket_of(3), 1);
        assert_eq!(LogHistogram::bucket_of(4), 2);
        assert_eq!(LogHistogram::bucket_of(1023), 9);
        assert_eq!(LogHistogram::bucket_of(1024), 10);
        assert_eq!(LogHistogram::bucket_of(u64::MAX), 63);
    }

    #[test]
    fn count_and_mean() {
        let h = LogHistogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.mean(), 0.0);
        for v in [100, 200, 300] {
            h.record(v);
        }
        assert_eq!(h.count(), 3);
        assert_eq!(h.mean(), 200.0);
    }

    #[test]
    fn quantiles_are_bucket_floors() {
        let h = LogHistogram::new();
        for _ in 0..90 {
            h.record(1_000); // bucket [512, 1024)
        }
        for _ in 0..10 {
            h.record(1_000_000); // bucket [2^19, 2^20)
        }
        assert_eq!(h.quantile_floor(0.5), 512);
        assert_eq!(h.quantile_floor(0.89), 512);
        assert_eq!(h.quantile_floor(0.95), 1 << 19);
        assert_eq!(h.quantile_floor(1.0), 1 << 19);
    }

    #[test]
    fn empty_quantile_is_zero() {
        let h = LogHistogram::new();
        assert_eq!(h.quantile_floor(0.5), 0);
    }

    #[test]
    fn nonzero_buckets_listing() {
        let h = LogHistogram::new();
        h.record(0);
        h.record(5);
        h.record(5);
        let b = h.nonzero_buckets();
        assert_eq!(b, vec![(0, 1), (4, 2)]);
    }

    #[test]
    fn merge_accumulates() {
        let a = LogHistogram::new();
        let b = LogHistogram::new();
        a.record(10);
        b.record(10);
        b.record(1000);
        a.merge(&b);
        assert_eq!(a.count(), 3);
        assert_eq!(a.nonzero_buckets().len(), 2);
    }

    #[test]
    fn reset_clears() {
        let h = LogHistogram::new();
        h.record(42);
        h.reset();
        assert_eq!(h.count(), 0);
        assert!(h.nonzero_buckets().is_empty());
    }

    #[test]
    fn render_produces_bars() {
        let h = LogHistogram::new();
        for _ in 0..10 {
            h.record(100);
        }
        h.record(100_000);
        let s = h.render("ns", 20);
        assert!(s.contains('#'));
        assert_eq!(s.lines().count(), 2);
    }

    #[test]
    fn concurrent_recording_is_lossless() {
        let h = std::sync::Arc::new(LogHistogram::new());
        let handles: Vec<_> = (0..4)
            .map(|t| {
                let h = std::sync::Arc::clone(&h);
                std::thread::spawn(move || {
                    for i in 0..10_000u64 {
                        h.record(i + t);
                    }
                })
            })
            .collect();
        for x in handles {
            x.join().unwrap();
        }
        assert_eq!(h.count(), 40_000);
    }
}
