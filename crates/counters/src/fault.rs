//! Deterministic fault-injection plans.
//!
//! A [`FaultPlan`] is a pure function from a *task identity* to a
//! [`FaultAction`], derived from a seed. It deliberately does **not**
//! carry mutable RNG state: each decision seeds a fresh [`crate::Pcg32`]
//! from `mix(seed, task, attempt)`, so the verdict for a task is
//! independent of scheduling order and thread interleaving. Two runs with
//! the same seed and the same task ids therefore inject *exactly* the
//! same faults — the property the replay tests assert.
//!
//! The plan lives in this base crate so both the native runtime
//! (`grain-runtime`, behind its `fault-inject` feature) and the
//! discrete-event simulator (`grain-sim`) interpret one seed identically.

use crate::rng::Pcg32;
use std::time::Duration;

/// What the injector should do to one task attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultAction {
    /// Run the task normally.
    None,
    /// Panic before the task body runs (exercises panic isolation).
    Panic,
    /// Sleep for the given duration before the task body runs
    /// (exercises watchdog/stall and timeout paths).
    Delay(Duration),
    /// Wake a parked worker for no reason before the task body runs
    /// (exercises spurious-wakeup tolerance of the parking protocol).
    SpuriousWake,
}

impl FaultAction {
    /// `true` unless the action is [`FaultAction::None`].
    pub fn is_fault(&self) -> bool {
        !matches!(self, FaultAction::None)
    }
}

/// A seeded, deterministic schedule of injected faults.
///
/// Rates are probabilities in `[0, 1]` evaluated per task attempt, in
/// priority order: panic, then delay, then spurious wake (at most one
/// action fires per attempt).
///
/// ```
/// use grain_counters::fault::{FaultAction, FaultPlan};
///
/// let plan = FaultPlan::new(42).with_panic_rate(0.5);
/// // Same seed + same task id => same verdict, always.
/// assert_eq!(plan.decide(7, 0), plan.decide(7, 0));
/// // A retry (attempt 1) rolls an independent verdict.
/// let _second = plan.decide(7, 1);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    seed: u64,
    panic_rate: f64,
    delay_rate: f64,
    delay: Duration,
    spurious_wake_rate: f64,
}

impl FaultPlan {
    /// A plan with the given seed and all rates zero.
    pub fn new(seed: u64) -> Self {
        Self {
            seed,
            panic_rate: 0.0,
            delay_rate: 0.0,
            delay: Duration::from_millis(1),
            spurious_wake_rate: 0.0,
        }
    }

    /// The seed this plan was built from.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Probability that a task attempt panics before running.
    pub fn with_panic_rate(mut self, rate: f64) -> Self {
        self.panic_rate = rate.clamp(0.0, 1.0);
        self
    }

    /// Probability that a task attempt is delayed, and by how much.
    pub fn with_delay(mut self, rate: f64, delay: Duration) -> Self {
        self.delay_rate = rate.clamp(0.0, 1.0);
        self.delay = delay;
        self
    }

    /// Probability that a task attempt triggers a spurious worker wake.
    pub fn with_spurious_wake_rate(mut self, rate: f64) -> Self {
        self.spurious_wake_rate = rate.clamp(0.0, 1.0);
        self
    }

    /// `true` if no configured rate can ever fire.
    pub fn is_empty(&self) -> bool {
        self.panic_rate == 0.0 && self.delay_rate == 0.0 && self.spurious_wake_rate == 0.0
    }

    /// The verdict for attempt `attempt` of task `task`.
    ///
    /// Pure: depends only on `(seed, task, attempt)`.
    pub fn decide(&self, task: u64, attempt: u64) -> FaultAction {
        if self.is_empty() {
            return FaultAction::None;
        }
        let mut rng = Pcg32::seed_from_u64(mix(mix(self.seed, task), attempt));
        if rng.next_f64() < self.panic_rate {
            return FaultAction::Panic;
        }
        if rng.next_f64() < self.delay_rate {
            return FaultAction::Delay(self.delay);
        }
        if rng.next_f64() < self.spurious_wake_rate {
            return FaultAction::SpuriousWake;
        }
        FaultAction::None
    }
}

/// SplitMix64 finalizer: a strong 64→64 bit mix so that nearby
/// `(seed, task)` pairs seed unrelated PCG streams.
fn mix(a: u64, b: u64) -> u64 {
    let mut z = a ^ b.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_plan_never_faults() {
        let plan = FaultPlan::new(1);
        for t in 0..1_000 {
            assert_eq!(plan.decide(t, 0), FaultAction::None);
        }
    }

    #[test]
    fn decisions_are_deterministic_and_order_free() {
        let plan = FaultPlan::new(0xDEAD)
            .with_panic_rate(0.3)
            .with_delay(0.3, Duration::from_micros(50))
            .with_spurious_wake_rate(0.3);
        let forward: Vec<_> = (0..500).map(|t| plan.decide(t, 0)).collect();
        let backward: Vec<_> = (0..500).rev().map(|t| plan.decide(t, 0)).collect();
        assert_eq!(
            forward,
            backward.into_iter().rev().collect::<Vec<_>>(),
            "a decision must not depend on evaluation order"
        );
    }

    #[test]
    fn rates_are_roughly_honored() {
        let plan = FaultPlan::new(7).with_panic_rate(0.25);
        let n = 10_000;
        let panics = (0..n)
            .filter(|&t| plan.decide(t, 0) == FaultAction::Panic)
            .count();
        let frac = panics as f64 / n as f64;
        assert!((frac - 0.25).abs() < 0.03, "panic fraction {frac}");
    }

    #[test]
    fn attempts_roll_independent_verdicts() {
        let plan = FaultPlan::new(3).with_panic_rate(0.5);
        // With p=0.5 per attempt, some task must see a panic followed by
        // a clean retry — that's what makes retry-until-success testable.
        let recovered = (0..100).any(|t| {
            plan.decide(t, 0) == FaultAction::Panic && plan.decide(t, 1) == FaultAction::None
        });
        assert!(recovered, "no task recovers on retry with p=0.5?");
    }

    #[test]
    fn panic_rate_one_always_panics() {
        let plan = FaultPlan::new(9).with_panic_rate(1.0);
        for t in 0..100 {
            assert_eq!(plan.decide(t, 0), FaultAction::Panic);
        }
    }
}
