//! The counter registry: symbolic name → live counter.
//!
//! HPX maps every counter to an immutable name in its global address space;
//! on a single locality that reduces to a registry keyed by
//! [`CounterPath`]. Components (the scheduler, the application, the
//! adaptation engine) register counters at startup and anyone can discover
//! and query them at runtime.

use crate::path::CounterPath;
use crate::raw::{RawCounter, Sharded};
use crate::value::{CounterValue, Unit};
use parking_lot::RwLock;
use std::collections::BTreeMap;
use std::fmt;
use std::sync::Arc;

/// A queryable performance counter. Implemented by raw counters, sharded
/// counters and derived (computed) counters.
pub trait Counter: Send + Sync {
    /// Take a sample.
    fn value(&self) -> CounterValue;
    /// Reset the counter to the beginning of a monitoring epoch.
    /// Derived counters reset their inputs' contribution if they own them;
    /// most derived counters are pure views and do nothing.
    fn reset(&self);
}

/// Adapter exposing a [`RawCounter`] through the [`Counter`] trait.
pub struct RawView {
    counter: Arc<RawCounter>,
    unit: Unit,
}

impl RawView {
    /// Expose `counter` with the given unit.
    pub fn new(counter: Arc<RawCounter>, unit: Unit) -> Self {
        Self { counter, unit }
    }
}

impl Counter for RawView {
    fn value(&self) -> CounterValue {
        CounterValue::now(self.counter.get() as f64, self.unit)
    }
    fn reset(&self) {
        self.counter.reset();
    }
}

/// Adapter exposing the *sum* of a [`Sharded`] counter (the `total`
/// instance).
pub struct ShardedTotal {
    counter: Arc<Sharded>,
    unit: Unit,
}

impl ShardedTotal {
    /// Expose the sum over all shards of `counter`.
    pub fn new(counter: Arc<Sharded>, unit: Unit) -> Self {
        Self { counter, unit }
    }
}

impl Counter for ShardedTotal {
    fn value(&self) -> CounterValue {
        CounterValue::now(self.counter.sum() as f64, self.unit)
    }
    fn reset(&self) {
        self.counter.reset();
    }
}

/// Adapter exposing a single shard of a [`Sharded`] counter (a per-worker
/// instance).
pub struct ShardedWorker {
    counter: Arc<Sharded>,
    worker: usize,
    unit: Unit,
}

impl ShardedWorker {
    /// Expose shard `worker` of `counter`.
    pub fn new(counter: Arc<Sharded>, worker: usize, unit: Unit) -> Self {
        assert!(worker < counter.shard_count(), "worker index out of range");
        Self {
            counter,
            worker,
            unit,
        }
    }
}

impl Counter for ShardedWorker {
    fn value(&self) -> CounterValue {
        CounterValue::now(self.counter.get(self.worker) as f64, self.unit)
    }
    fn reset(&self) {
        // Resetting a single worker's shard would desynchronize the total;
        // per-worker views reset the whole family, as HPX does for
        // aggregate counters.
        self.counter.reset();
    }
}

/// Errors from registry operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RegistryError {
    /// The path string failed to parse.
    BadPath(String),
    /// A counter is already registered under this path.
    Duplicate(String),
    /// No counter is registered under this path.
    NotFound(String),
}

impl fmt::Display for RegistryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RegistryError::BadPath(p) => write!(f, "bad counter path: {p}"),
            RegistryError::Duplicate(p) => write!(f, "counter already registered: {p}"),
            RegistryError::NotFound(p) => write!(f, "no such counter: {p}"),
        }
    }
}

impl std::error::Error for RegistryError {}

/// The counter registry.
///
/// Registration happens at startup (cold); queries happen at runtime (warm
/// but not hot — the hot path increments raw counters directly). A
/// `BTreeMap` keeps discovery output deterministically ordered.
#[derive(Default)]
pub struct Registry {
    counters: RwLock<BTreeMap<String, Arc<dyn Counter>>>,
}

impl Registry {
    /// Empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register `counter` under `path`.
    pub fn register(
        &self,
        path: &str,
        counter: impl Counter + 'static,
    ) -> Result<(), RegistryError> {
        self.register_arc(path, Arc::new(counter))
    }

    /// Register an already-shared counter under `path`.
    pub fn register_arc(
        &self,
        path: &str,
        counter: Arc<dyn Counter>,
    ) -> Result<(), RegistryError> {
        let parsed: CounterPath = path
            .parse()
            .map_err(|_| RegistryError::BadPath(path.to_owned()))?;
        let key = parsed.to_string();
        let mut map = self.counters.write();
        if map.contains_key(&key) {
            return Err(RegistryError::Duplicate(key));
        }
        map.insert(key, counter);
        Ok(())
    }

    /// Sample the counter registered under `path`.
    pub fn query(&self, path: &str) -> Result<CounterValue, RegistryError> {
        let parsed: CounterPath = path
            .parse()
            .map_err(|_| RegistryError::BadPath(path.to_owned()))?;
        let key = parsed.to_string();
        let map = self.counters.read();
        map.get(&key)
            .map(|c| c.value())
            .ok_or(RegistryError::NotFound(key))
    }

    /// All registered paths matching `pattern` (a path whose counter name
    /// may end in `*`, and whose missing instance matches any instance),
    /// in lexicographic order.
    pub fn discover(&self, pattern: &str) -> Result<Vec<String>, RegistryError> {
        let pat: CounterPath = pattern
            .parse()
            .map_err(|_| RegistryError::BadPath(pattern.to_owned()))?;
        let map = self.counters.read();
        Ok(map
            .keys()
            .filter(|k| {
                k.parse::<CounterPath>()
                    .map(|p| pat.matches(&p))
                    .unwrap_or(false)
            })
            .cloned()
            .collect())
    }

    /// Sample every counter matching `pattern`, keyed by path.
    pub fn query_all(
        &self,
        pattern: &str,
    ) -> Result<Vec<(String, CounterValue)>, RegistryError> {
        let names = self.discover(pattern)?;
        let map = self.counters.read();
        Ok(names
            .into_iter()
            .filter_map(|n| map.get(&n).map(|c| (n.clone(), c.value())))
            .collect())
    }

    /// All registered paths.
    pub fn paths(&self) -> Vec<String> {
        self.counters.read().keys().cloned().collect()
    }

    /// Reset every registered counter (start of a monitoring epoch).
    pub fn reset_all(&self) {
        for c in self.counters.read().values() {
            c.reset();
        }
    }

    /// Number of registered counters.
    pub fn len(&self) -> usize {
        self.counters.read().len()
    }

    /// True if no counter has been registered.
    pub fn is_empty(&self) -> bool {
        self.counters.read().is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn reg_with_raw(path: &str) -> (Registry, Arc<RawCounter>) {
        let reg = Registry::new();
        let c = Arc::new(RawCounter::new());
        reg.register(path, RawView::new(Arc::clone(&c), Unit::Count))
            .unwrap();
        (reg, c)
    }

    #[test]
    fn register_and_query() {
        let (reg, c) = reg_with_raw("/threads/count/cumulative");
        c.add(7);
        let v = reg.query("/threads/count/cumulative").unwrap();
        assert_eq!(v.as_count(), 7);
    }

    #[test]
    fn duplicate_rejected() {
        let (reg, _) = reg_with_raw("/threads/count/cumulative");
        let err = reg
            .register(
                "/threads/count/cumulative",
                RawView::new(Arc::new(RawCounter::new()), Unit::Count),
            )
            .unwrap_err();
        assert!(matches!(err, RegistryError::Duplicate(_)));
    }

    #[test]
    fn missing_counter_is_not_found() {
        let reg = Registry::new();
        assert!(matches!(
            reg.query("/threads/idle-rate"),
            Err(RegistryError::NotFound(_))
        ));
    }

    #[test]
    fn bad_path_is_reported() {
        let reg = Registry::new();
        assert!(matches!(
            reg.query("threads/idle-rate"),
            Err(RegistryError::BadPath(_))
        ));
    }

    #[test]
    fn discover_with_wildcard() {
        let reg = Registry::new();
        for p in [
            "/threads/count/cumulative",
            "/threads/count/pending-accesses",
            "/threads/time/average",
        ] {
            reg.register(p, RawView::new(Arc::new(RawCounter::new()), Unit::Count))
                .unwrap();
        }
        let found = reg.discover("/threads/count/*").unwrap();
        assert_eq!(
            found,
            vec![
                "/threads/count/cumulative".to_owned(),
                "/threads/count/pending-accesses".to_owned()
            ]
        );
    }

    #[test]
    fn instanceless_pattern_matches_instances() {
        let reg = Registry::new();
        let shard = Arc::new(Sharded::new(2));
        shard.add(0, 3);
        shard.add(1, 4);
        reg.register(
            "/threads{locality#0/total}/count/cumulative",
            ShardedTotal::new(Arc::clone(&shard), Unit::Count),
        )
        .unwrap();
        for w in 0..2 {
            reg.register(
                &format!("/threads{{locality#0/worker-thread#{w}}}/count/cumulative"),
                ShardedWorker::new(Arc::clone(&shard), w, Unit::Count),
            )
            .unwrap();
        }
        let hits = reg.query_all("/threads/count/cumulative").unwrap();
        assert_eq!(hits.len(), 3);
        let total = reg
            .query("/threads{locality#0/total}/count/cumulative")
            .unwrap();
        assert_eq!(total.as_count(), 7);
        let w1 = reg
            .query("/threads{locality#0/worker-thread#1}/count/cumulative")
            .unwrap();
        assert_eq!(w1.as_count(), 4);
    }

    #[test]
    fn reset_all_zeroes() {
        let (reg, c) = reg_with_raw("/threads/count/stolen");
        c.add(9);
        reg.reset_all();
        assert_eq!(reg.query("/threads/count/stolen").unwrap().as_count(), 0);
    }
}
