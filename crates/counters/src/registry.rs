//! The counter registry: symbolic name → live counter.
//!
//! HPX maps every counter to an immutable name in its global address space;
//! on a single locality that reduces to a registry keyed by
//! [`CounterPath`]. Components (the scheduler, the application, the
//! adaptation engine) register counters at startup and anyone can discover
//! and query them at runtime.

use crate::path::CounterPath;
use crate::raw::{RawCounter, Sharded};
use crate::sync::RwLock;
use crate::value::{CounterValue, Unit};
use std::collections::BTreeMap;
use std::fmt;
use std::sync::Arc;

/// A queryable performance counter. Implemented by raw counters, sharded
/// counters and derived (computed) counters.
pub trait Counter: Send + Sync {
    /// Take a sample.
    fn value(&self) -> CounterValue;
    /// Reset the counter to the beginning of a monitoring epoch.
    /// Derived counters reset their inputs' contribution if they own them;
    /// most derived counters are pure views and do nothing.
    fn reset(&self);
}

/// Adapter exposing a [`RawCounter`] through the [`Counter`] trait.
pub struct RawView {
    counter: Arc<RawCounter>,
    unit: Unit,
}

impl RawView {
    /// Expose `counter` with the given unit.
    pub fn new(counter: Arc<RawCounter>, unit: Unit) -> Self {
        Self { counter, unit }
    }
}

impl Counter for RawView {
    fn value(&self) -> CounterValue {
        CounterValue::now(self.counter.get() as f64, self.unit)
    }
    fn reset(&self) {
        self.counter.reset();
    }
}

/// Adapter exposing the *sum* of a [`Sharded`] counter (the `total`
/// instance).
pub struct ShardedTotal {
    counter: Arc<Sharded>,
    unit: Unit,
}

impl ShardedTotal {
    /// Expose the sum over all shards of `counter`.
    pub fn new(counter: Arc<Sharded>, unit: Unit) -> Self {
        Self { counter, unit }
    }
}

impl Counter for ShardedTotal {
    fn value(&self) -> CounterValue {
        CounterValue::now(self.counter.sum() as f64, self.unit)
    }
    fn reset(&self) {
        self.counter.reset();
    }
}

/// Adapter exposing a single shard of a [`Sharded`] counter (a per-worker
/// instance).
pub struct ShardedWorker {
    counter: Arc<Sharded>,
    worker: usize,
    unit: Unit,
}

impl ShardedWorker {
    /// Expose shard `worker` of `counter`.
    pub fn new(counter: Arc<Sharded>, worker: usize, unit: Unit) -> Self {
        assert!(worker < counter.shard_count(), "worker index out of range");
        Self {
            counter,
            worker,
            unit,
        }
    }
}

impl Counter for ShardedWorker {
    fn value(&self) -> CounterValue {
        CounterValue::now(self.counter.get(self.worker) as f64, self.unit)
    }
    fn reset(&self) {
        // Resetting a single worker's shard would desynchronize the total;
        // per-worker views reset the whole family, as HPX does for
        // aggregate counters.
        self.counter.reset();
    }
}

/// Errors from registry operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RegistryError {
    /// The path string failed to parse.
    BadPath(String),
    /// A counter is already registered under this path.
    Duplicate(String),
    /// No counter is registered under this path.
    NotFound(String),
}

impl fmt::Display for RegistryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RegistryError::BadPath(p) => write!(f, "bad counter path: {p}"),
            RegistryError::Duplicate(p) => write!(f, "counter already registered: {p}"),
            RegistryError::NotFound(p) => write!(f, "no such counter: {p}"),
        }
    }
}

impl std::error::Error for RegistryError {}

/// The counter registry.
///
/// Registration happens at startup (cold); queries happen at runtime (warm
/// but not hot — the hot path increments raw counters directly). A
/// `BTreeMap` keeps discovery output deterministically ordered.
#[derive(Default)]
pub struct Registry {
    counters: RwLock<BTreeMap<String, Arc<dyn Counter>>>,
}

impl Registry {
    /// Empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register `counter` under `path`.
    pub fn register(
        &self,
        path: &str,
        counter: impl Counter + 'static,
    ) -> Result<(), RegistryError> {
        self.register_arc(path, Arc::new(counter))
    }

    /// Register an already-shared counter under `path`.
    pub fn register_arc(&self, path: &str, counter: Arc<dyn Counter>) -> Result<(), RegistryError> {
        let parsed: CounterPath = path
            .parse()
            .map_err(|_| RegistryError::BadPath(path.to_owned()))?;
        let key = parsed.to_string();
        let mut map = self.counters.write();
        if map.contains_key(&key) {
            return Err(RegistryError::Duplicate(key));
        }
        map.insert(key, counter);
        Ok(())
    }

    /// Sample the counter registered under `path`.
    pub fn query(&self, path: &str) -> Result<CounterValue, RegistryError> {
        let parsed: CounterPath = path
            .parse()
            .map_err(|_| RegistryError::BadPath(path.to_owned()))?;
        let key = parsed.to_string();
        let map = self.counters.read();
        map.get(&key)
            .map(|c| c.value())
            .ok_or(RegistryError::NotFound(key))
    }

    /// All registered paths matching `pattern` (a path whose counter name
    /// may end in `*`, and whose missing instance matches any instance),
    /// in lexicographic order.
    pub fn discover(&self, pattern: &str) -> Result<Vec<String>, RegistryError> {
        let pat: CounterPath = pattern
            .parse()
            .map_err(|_| RegistryError::BadPath(pattern.to_owned()))?;
        let map = self.counters.read();
        Ok(map
            .keys()
            .filter(|k| {
                k.parse::<CounterPath>()
                    .map(|p| pat.matches(&p))
                    .unwrap_or(false)
            })
            .cloned()
            .collect())
    }

    /// Sample every counter matching `pattern`, keyed by path.
    pub fn query_all(&self, pattern: &str) -> Result<Vec<(String, CounterValue)>, RegistryError> {
        let names = self.discover(pattern)?;
        let map = self.counters.read();
        Ok(names
            .into_iter()
            .filter_map(|n| map.get(&n).map(|c| (n.clone(), c.value())))
            .collect())
    }

    /// Remove the counter registered under `path`.
    pub fn unregister(&self, path: &str) -> Result<(), RegistryError> {
        let parsed: CounterPath = path
            .parse()
            .map_err(|_| RegistryError::BadPath(path.to_owned()))?;
        let key = parsed.to_string();
        let mut map = self.counters.write();
        map.remove(&key)
            .map(|_| ())
            .ok_or(RegistryError::NotFound(key))
    }

    /// Remove every counter matching `pattern` (same matching rules as
    /// [`discover`](Self::discover)); returns how many were removed.
    /// Retiring a whole instance namespace — e.g. every counter of one
    /// finished job — is `unregister_matching("/jobs{render#3}/*")`… except
    /// that patterns carry wildcards in the *name*, so the idiomatic call
    /// is via [`Registry::scope`] + [`ScopedRegistry::unregister_all`].
    pub fn unregister_matching(&self, pattern: &str) -> Result<usize, RegistryError> {
        let pat: CounterPath = pattern
            .parse()
            .map_err(|_| RegistryError::BadPath(pattern.to_owned()))?;
        let mut map = self.counters.write();
        let doomed: Vec<String> = map
            .keys()
            .filter(|k| {
                k.parse::<CounterPath>()
                    .map(|p| pat.matches(&p))
                    .unwrap_or(false)
            })
            .cloned()
            .collect();
        for k in &doomed {
            map.remove(k);
        }
        Ok(doomed.len())
    }

    /// A registration handle scoped to one `object{instance}` namespace.
    ///
    /// Counters registered through the scope live under
    /// `/{object}{{instance}}/<name>`; [`ScopedRegistry::unregister_all`]
    /// retires the whole namespace in one call. This is how per-job
    /// counters come and go without disturbing the long-lived scheduler
    /// counters that share the registry.
    pub fn scope(
        self: &Arc<Self>,
        object: impl Into<String>,
        instance: impl Into<String>,
    ) -> ScopedRegistry {
        ScopedRegistry {
            registry: Arc::clone(self),
            object: object.into(),
            instance: instance.into(),
            keys: crate::sync::Mutex::new(Vec::new()),
        }
    }

    /// All registered paths.
    pub fn paths(&self) -> Vec<String> {
        self.counters.read().keys().cloned().collect()
    }

    /// Reset every registered counter (start of a monitoring epoch).
    pub fn reset_all(&self) {
        for c in self.counters.read().values() {
            c.reset();
        }
    }

    /// Number of registered counters.
    pub fn len(&self) -> usize {
        self.counters.read().len()
    }

    /// True if no counter has been registered.
    pub fn is_empty(&self) -> bool {
        self.counters.read().is_empty()
    }
}

/// A handle that registers counters inside one `object{instance}`
/// namespace and can retire them all at once. Created by
/// [`Registry::scope`].
pub struct ScopedRegistry {
    registry: Arc<Registry>,
    object: String,
    instance: String,
    keys: crate::sync::Mutex<Vec<String>>,
}

impl ScopedRegistry {
    /// The full path `name` maps to inside this scope.
    pub fn path_of(&self, name: &str) -> String {
        format!("/{}{{{}}}/{}", self.object, self.instance, name)
    }

    /// The `object{instance}` prefix rendered as a path fragment (useful
    /// for display).
    pub fn prefix(&self) -> String {
        format!("/{}{{{}}}", self.object, self.instance)
    }

    /// Register `counter` under `name` within the scope.
    pub fn register(
        &self,
        name: &str,
        counter: impl Counter + 'static,
    ) -> Result<(), RegistryError> {
        self.register_arc(name, Arc::new(counter))
    }

    /// Register an already-shared counter under `name` within the scope.
    pub fn register_arc(&self, name: &str, counter: Arc<dyn Counter>) -> Result<(), RegistryError> {
        let path = self.path_of(name);
        self.registry.register_arc(&path, counter)?;
        self.keys.lock().push(path);
        Ok(())
    }

    /// Sample a counter registered in this scope by its short `name`.
    pub fn query(&self, name: &str) -> Result<CounterValue, RegistryError> {
        self.registry.query(&self.path_of(name))
    }

    /// Full paths of every counter registered through this scope, in
    /// registration order.
    pub fn paths(&self) -> Vec<String> {
        self.keys.lock().clone()
    }

    /// Remove every counter registered through this scope; returns how
    /// many were removed (counters already removed directly are skipped).
    pub fn unregister_all(&self) -> usize {
        let keys = std::mem::take(&mut *self.keys.lock());
        keys.iter()
            .filter(|k| self.registry.unregister(k).is_ok())
            .count()
    }
}

impl Drop for ScopedRegistry {
    fn drop(&mut self) {
        // A scope is the lifetime of its namespace: dropping it retires
        // any counters still registered.
        self.unregister_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn reg_with_raw(path: &str) -> (Registry, Arc<RawCounter>) {
        let reg = Registry::new();
        let c = Arc::new(RawCounter::new());
        reg.register(path, RawView::new(Arc::clone(&c), Unit::Count))
            .unwrap();
        (reg, c)
    }

    #[test]
    fn register_and_query() {
        let (reg, c) = reg_with_raw("/threads/count/cumulative");
        c.add(7);
        let v = reg.query("/threads/count/cumulative").unwrap();
        assert_eq!(v.as_count(), 7);
    }

    #[test]
    fn duplicate_rejected() {
        let (reg, _) = reg_with_raw("/threads/count/cumulative");
        let err = reg
            .register(
                "/threads/count/cumulative",
                RawView::new(Arc::new(RawCounter::new()), Unit::Count),
            )
            .unwrap_err();
        assert!(matches!(err, RegistryError::Duplicate(_)));
    }

    #[test]
    fn missing_counter_is_not_found() {
        let reg = Registry::new();
        assert!(matches!(
            reg.query("/threads/idle-rate"),
            Err(RegistryError::NotFound(_))
        ));
    }

    #[test]
    fn bad_path_is_reported() {
        let reg = Registry::new();
        assert!(matches!(
            reg.query("threads/idle-rate"),
            Err(RegistryError::BadPath(_))
        ));
    }

    #[test]
    fn discover_with_wildcard() {
        let reg = Registry::new();
        for p in [
            "/threads/count/cumulative",
            "/threads/count/pending-accesses",
            "/threads/time/average",
        ] {
            reg.register(p, RawView::new(Arc::new(RawCounter::new()), Unit::Count))
                .unwrap();
        }
        let found = reg.discover("/threads/count/*").unwrap();
        assert_eq!(
            found,
            vec![
                "/threads/count/cumulative".to_owned(),
                "/threads/count/pending-accesses".to_owned()
            ]
        );
    }

    #[test]
    fn instanceless_pattern_matches_instances() {
        let reg = Registry::new();
        let shard = Arc::new(Sharded::new(2));
        shard.add(0, 3);
        shard.add(1, 4);
        reg.register(
            "/threads{locality#0/total}/count/cumulative",
            ShardedTotal::new(Arc::clone(&shard), Unit::Count),
        )
        .unwrap();
        for w in 0..2 {
            reg.register(
                &format!("/threads{{locality#0/worker-thread#{w}}}/count/cumulative"),
                ShardedWorker::new(Arc::clone(&shard), w, Unit::Count),
            )
            .unwrap();
        }
        let hits = reg.query_all("/threads/count/cumulative").unwrap();
        assert_eq!(hits.len(), 3);
        let total = reg
            .query("/threads{locality#0/total}/count/cumulative")
            .unwrap();
        assert_eq!(total.as_count(), 7);
        let w1 = reg
            .query("/threads{locality#0/worker-thread#1}/count/cumulative")
            .unwrap();
        assert_eq!(w1.as_count(), 4);
    }

    #[test]
    fn unregister_removes_and_reports_missing() {
        let (reg, _) = reg_with_raw("/threads/count/stolen");
        assert_eq!(reg.len(), 1);
        reg.unregister("/threads/count/stolen").unwrap();
        assert!(reg.is_empty());
        assert!(matches!(
            reg.unregister("/threads/count/stolen"),
            Err(RegistryError::NotFound(_))
        ));
    }

    #[test]
    fn unregister_matching_clears_a_namespace() {
        let reg = Registry::new();
        for p in [
            "/jobs{render#1}/count/tasks",
            "/jobs{render#1}/time/exec",
            "/jobs{render#2}/count/tasks",
            "/threads/count/cumulative",
        ] {
            reg.register(p, RawView::new(Arc::new(RawCounter::new()), Unit::Count))
                .unwrap();
        }
        // An instance-qualified wildcard pattern hits only that instance.
        let pat: CounterPath = "/jobs/ignored".parse().unwrap();
        assert!(pat.instance.is_none());
        let removed = reg.unregister_matching("/jobs{render#1}/*").unwrap();
        assert_eq!(removed, 2);
        assert_eq!(
            reg.paths(),
            vec![
                "/jobs{render#2}/count/tasks".to_owned(),
                "/threads/count/cumulative".to_owned()
            ]
        );
    }

    #[test]
    fn scope_registers_queries_and_retires() {
        let reg = Arc::new(Registry::new());
        let scope = reg.scope("jobs", "tenant-a/render#3");
        let c = Arc::new(RawCounter::new());
        scope
            .register("count/tasks", RawView::new(Arc::clone(&c), Unit::Count))
            .unwrap();
        scope
            .register(
                "time/cumulative-exec",
                RawView::new(Arc::new(RawCounter::new()), Unit::Nanoseconds),
            )
            .unwrap();
        c.add(5);
        assert_eq!(
            scope.path_of("count/tasks"),
            "/jobs{tenant-a/render#3}/count/tasks"
        );
        // Visible through the scope and through the shared registry.
        assert_eq!(scope.query("count/tasks").unwrap().as_count(), 5);
        assert_eq!(
            reg.query("/jobs{tenant-a/render#3}/count/tasks")
                .unwrap()
                .as_count(),
            5
        );
        assert_eq!(scope.paths().len(), 2);
        assert_eq!(scope.unregister_all(), 2);
        assert!(reg.is_empty());
        // Idempotent.
        assert_eq!(scope.unregister_all(), 0);
    }

    #[test]
    fn dropping_a_scope_retires_its_namespace() {
        let reg = Arc::new(Registry::new());
        {
            let scope = reg.scope("jobs", "sweep#0");
            scope
                .register(
                    "count/tasks",
                    RawView::new(Arc::new(RawCounter::new()), Unit::Count),
                )
                .unwrap();
            assert_eq!(reg.len(), 1);
        }
        assert!(reg.is_empty(), "drop retires the scope's counters");
    }

    #[test]
    fn scopes_are_isolated_between_instances() {
        let reg = Arc::new(Registry::new());
        let a = reg.scope("jobs", "a#1");
        let b = reg.scope("jobs", "b#2");
        let ca = Arc::new(RawCounter::new());
        let cb = Arc::new(RawCounter::new());
        a.register("count/tasks", RawView::new(Arc::clone(&ca), Unit::Count))
            .unwrap();
        b.register("count/tasks", RawView::new(Arc::clone(&cb), Unit::Count))
            .unwrap();
        ca.add(1);
        cb.add(2);
        assert_eq!(a.query("count/tasks").unwrap().as_count(), 1);
        assert_eq!(b.query("count/tasks").unwrap().as_count(), 2);
        a.unregister_all();
        assert_eq!(b.query("count/tasks").unwrap().as_count(), 2);
    }

    #[test]
    fn reset_all_zeroes() {
        let (reg, c) = reg_with_raw("/threads/count/stolen");
        c.add(9);
        reg.reset_all();
        assert_eq!(reg.query("/threads/count/stolen").unwrap().as_count(), 0);
    }
}
