//! Seeded pseudo-random numbers without external dependencies.
//!
//! The simulator and the fault-injection plan both need *deterministic,
//! seedable* randomness (run-to-run reproducibility is asserted by the
//! test suite), not cryptographic quality. It lives in this base crate so
//! `grain-runtime` and `grain-sim` draw from the same generator without
//! depending on each other. This is PCG-XSH-RR 64/32 (O'Neill 2014): a
//! 64-bit LCG state advanced per draw, output-permuted to 32 bits; two
//! draws make a `u64`. Statistically far better than a bare LCG at the
//! same cost, and eight lines of code.

/// A PCG32 generator. Cheap to construct, `Clone` snapshots the stream.
#[derive(Debug, Clone)]
pub struct Pcg32 {
    state: u64,
    inc: u64,
}

const PCG_MULT: u64 = 6364136223846793005;

impl Pcg32 {
    /// Seed a generator. Equal seeds yield equal streams.
    pub fn seed_from_u64(seed: u64) -> Self {
        // Standard PCG seeding: advance once with the seed mixed in so
        // that nearby seeds diverge immediately.
        let mut rng = Self {
            state: 0,
            inc: (seed << 1) | 1,
        };
        rng.next_u32();
        rng.state = rng.state.wrapping_add(seed);
        rng.next_u32();
        rng
    }

    /// Next 32 random bits.
    #[inline]
    pub fn next_u32(&mut self) -> u32 {
        let old = self.state;
        self.state = old.wrapping_mul(PCG_MULT).wrapping_add(self.inc);
        let xorshifted = (((old >> 18) ^ old) >> 27) as u32;
        let rot = (old >> 59) as u32;
        xorshifted.rotate_right(rot)
    }

    /// Next 64 random bits.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        (u64::from(self.next_u32()) << 32) | u64::from(self.next_u32())
    }

    /// Uniform `f64` in `[0, 1)` (53 bits of precision).
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform `f64` in `[lo, hi)`.
    #[inline]
    pub fn range_f64(&mut self, lo: f64, hi: f64) -> f64 {
        debug_assert!(lo < hi);
        lo + (hi - lo) * self.next_f64()
    }

    /// Uniform integer in `[0, n)`. `n` must be nonzero.
    ///
    /// Debiased multiply-shift (Lemire): rejection keeps the distribution
    /// exactly uniform even when `n` does not divide 2^64.
    #[inline]
    pub fn range_u64(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        loop {
            let x = self.next_u64();
            let (hi, lo) = {
                let wide = (x as u128) * (n as u128);
                ((wide >> 64) as u64, wide as u64)
            };
            if lo >= n.wrapping_neg() % n {
                return hi;
            }
            // Rejected: draw again (vanishingly rare for small n).
        }
    }

    /// Standard-normal draw via Box–Muller (one of the pair is discarded;
    /// the simulator draws rarely enough that caching isn't worth state).
    pub fn next_gaussian(&mut self) -> f64 {
        let u1 = self.next_f64().max(f64::EPSILON);
        let u2 = self.next_f64();
        (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = Pcg32::seed_from_u64(42);
        let mut b = Pcg32::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = Pcg32::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn f64_stays_in_unit_interval() {
        let mut r = Pcg32::seed_from_u64(7);
        for _ in 0..10_000 {
            let x = r.next_f64();
            assert!((0.0..1.0).contains(&x), "{x}");
        }
    }

    #[test]
    fn range_u64_is_bounded_and_covers() {
        let mut r = Pcg32::seed_from_u64(1);
        let mut seen = [false; 7];
        for _ in 0..1_000 {
            let x = r.range_u64(7) as usize;
            assert!(x < 7);
            seen[x] = true;
        }
        assert!(seen.iter().all(|&s| s), "all residues reachable: {seen:?}");
    }

    #[test]
    fn mean_of_uniform_is_centered() {
        let mut r = Pcg32::seed_from_u64(99);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| r.next_f64()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn gaussian_moments_are_sane() {
        let mut r = Pcg32::seed_from_u64(5);
        let n = 50_000;
        let draws: Vec<f64> = (0..n).map(|_| r.next_gaussian()).collect();
        let mean = draws.iter().sum::<f64>() / n as f64;
        let var = draws.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.03, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }
}
