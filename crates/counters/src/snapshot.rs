//! Point-in-time captures of a counter set and interval deltas.
//!
//! The paper stresses (§II-A) that every metric "can be calculated over any
//! interval of interest" — that is what makes the counters usable for
//! *dynamic* adaptation, not just post-mortem analysis. A [`Snapshot`]
//! captures all counters matching a pattern; an [`Interval`] subtracts two
//! snapshots, yielding the event counts and time sums accumulated in
//! between. The adaptation engine in `grain-adaptive` consumes intervals.

use crate::registry::{Registry, RegistryError};
use crate::value::{CounterValue, Unit};
use std::collections::BTreeMap;

/// A point-in-time capture of every counter matching a pattern.
#[derive(Debug, Clone)]
pub struct Snapshot {
    values: BTreeMap<String, CounterValue>,
}

impl Snapshot {
    /// Capture all counters in `registry` matching `pattern`
    /// (see [`Registry::discover`] for pattern semantics).
    pub fn capture(registry: &Registry, pattern: &str) -> Result<Self, RegistryError> {
        let values = registry
            .query_all(pattern)?
            .into_iter()
            .collect::<BTreeMap<_, _>>();
        Ok(Self { values })
    }

    /// Capture every registered counter.
    pub fn capture_all(registry: &Registry) -> Self {
        let mut values = BTreeMap::new();
        for p in registry.paths() {
            if let Ok(v) = registry.query(&p) {
                values.insert(p, v);
            }
        }
        Self { values }
    }

    /// Value recorded for `path`, if that counter was captured.
    pub fn get(&self, path: &str) -> Option<CounterValue> {
        self.values.get(path).copied()
    }

    /// Iterate over `(path, value)` pairs in lexicographic path order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &CounterValue)> {
        self.values.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Number of captured counters.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// True if nothing was captured.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// The interval `self → later`: for cumulative units (counts, times,
    /// bytes) the delta `later − self`; instantaneous units (ratios) take
    /// the later value as-is.
    pub fn delta(&self, later: &Snapshot) -> Interval {
        let mut values = BTreeMap::new();
        for (path, after) in &later.values {
            let v = match (self.values.get(path), after.unit) {
                (Some(before), Unit::Count | Unit::Nanoseconds | Unit::Bytes) => CounterValue {
                    value: (after.value - before.value).max(0.0),
                    unit: after.unit,
                    timestamp_ns: after.timestamp_ns,
                },
                _ => *after,
            };
            values.insert(path.clone(), v);
        }
        Interval { values }
    }
}

/// The difference between two [`Snapshot`]s — counters accumulated over a
/// monitoring window.
#[derive(Debug, Clone)]
pub struct Interval {
    values: BTreeMap<String, CounterValue>,
}

impl Interval {
    /// Delta (or latest instantaneous value) recorded for `path`.
    pub fn get(&self, path: &str) -> Option<CounterValue> {
        self.values.get(path).copied()
    }

    /// Iterate over `(path, value)` pairs in lexicographic path order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &CounterValue)> {
        self.values.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Number of counters in the window.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// True if the window is empty.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Recompute a ratio over this window from its cumulative parts:
    /// `(whole − part) / whole`, the windowed idle-rate (Eq. 1 over an
    /// interval). Returns `None` if either path is missing or `whole` is 0.
    pub fn windowed_ratio(&self, part_path: &str, whole_path: &str) -> Option<f64> {
        let part = self.get(part_path)?.value;
        let whole = self.get(whole_path)?.value;
        if whole <= 0.0 {
            None
        } else {
            Some(((whole - part.min(whole)) / whole).clamp(0.0, 1.0))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::raw::RawCounter;
    use crate::registry::RawView;
    use std::sync::Arc;

    fn registry_with(paths: &[(&str, u64, Unit)]) -> (Registry, Vec<Arc<RawCounter>>) {
        let reg = Registry::new();
        let mut raws = Vec::new();
        for (p, v, u) in paths {
            let c = Arc::new(RawCounter::new());
            c.add(*v);
            reg.register(p, RawView::new(Arc::clone(&c), *u)).unwrap();
            raws.push(c);
        }
        (reg, raws)
    }

    #[test]
    fn capture_and_get() {
        let (reg, _) = registry_with(&[
            ("/threads/count/cumulative", 5, Unit::Count),
            ("/threads/time/cumulative-exec", 100, Unit::Nanoseconds),
        ]);
        let snap = Snapshot::capture_all(&reg);
        assert_eq!(snap.len(), 2);
        assert_eq!(snap.get("/threads/count/cumulative").unwrap().as_count(), 5);
        assert!(snap.get("/threads/missing").is_none());
    }

    #[test]
    fn delta_subtracts_cumulative_counters() {
        let (reg, raws) = registry_with(&[("/threads/count/cumulative", 5, Unit::Count)]);
        let before = Snapshot::capture_all(&reg);
        raws[0].add(12);
        let after = Snapshot::capture_all(&reg);
        let window = before.delta(&after);
        assert_eq!(
            window.get("/threads/count/cumulative").unwrap().as_count(),
            12
        );
    }

    #[test]
    fn delta_keeps_instantaneous_ratios() {
        let reg = Registry::new();
        reg.register(
            "/threads/idle-rate",
            crate::derived::DerivedCounter::new(Unit::Ratio, || 0.25),
        )
        .unwrap();
        let before = Snapshot::capture_all(&reg);
        let after = Snapshot::capture_all(&reg);
        let window = before.delta(&after);
        assert_eq!(window.get("/threads/idle-rate").unwrap().value, 0.25);
    }

    #[test]
    fn windowed_ratio_matches_eq1_over_interval() {
        let (reg, raws) = registry_with(&[
            ("/threads/time/cumulative-exec", 100, Unit::Nanoseconds),
            ("/threads/time/cumulative-func", 150, Unit::Nanoseconds),
        ]);
        let before = Snapshot::capture_all(&reg);
        raws[0].add(600); // +600 exec
        raws[1].add(1000); // +1000 func
        let after = Snapshot::capture_all(&reg);
        let window = before.delta(&after);
        let ir = window
            .windowed_ratio(
                "/threads/time/cumulative-exec",
                "/threads/time/cumulative-func",
            )
            .unwrap();
        assert!((ir - 0.4).abs() < 1e-12);
    }

    #[test]
    fn capture_with_pattern_filters() {
        let (reg, _) = registry_with(&[
            ("/threads/count/cumulative", 1, Unit::Count),
            ("/threads/time/cumulative-exec", 2, Unit::Nanoseconds),
        ]);
        let snap = Snapshot::capture(&reg, "/threads/count/*").unwrap();
        assert_eq!(snap.len(), 1);
    }
}
