//! The worker side of the fleet: a [`JobService`] behind a locality.
//!
//! A [`FleetWorker`] wraps one locality with a job service and
//! registers three actions:
//!
//! * `fleet/submit` — admit a routed [`FleetJob`]. Idempotent by key:
//!   a key already running is acknowledged without a second execution;
//!   a key already *finished* re-pushes its recorded outcome instead of
//!   re-running (the dying-gateway / duplicated-frame path). Epochs
//!   older than the newest seen for a key are fenced.
//! * `fleet/drain` — stop accepting, cancel every still-queued fleet
//!   job, and hand their keys back for gateway re-dispatch. Running
//!   jobs finish and push normally.
//! * `sys/stats` — the load report placement polls
//!   ([`crate::stats::register_sys_stats`]).
//!
//! Completions are *pushed*: a pump thread watches admitted jobs and
//! calls the gateway's `fleet/complete` action when one goes terminal.
//! A push that fails (severed link, partition) is retried with backoff
//! until acknowledged — the gateway fences duplicates and stale epochs,
//! so at-least-once pushing composes into exactly-once accounting.

#![deny(clippy::unwrap_used)]

use crate::stats::register_sys_stats;
use crate::wire::{
    family_of_code, DrainReport, FleetJob, FleetOutcome, SubmitAck, SubmitVerdict, WireReject,
    ACTION_COMPLETE, ACTION_DRAIN, ACTION_SUBMIT,
};
use grain_counters::sync::{Condvar, Mutex};
use grain_net::Locality;
use grain_runtime::{SharedFuture, TaskContext};
use grain_service::{JobHandle, JobService, JobSpec, JobState, ServiceConfig};
use grain_taskbench::storm::{spawn_in_job, spec_for_event};
use grain_taskbench::work::busy_work;
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Worker tuning.
#[derive(Debug, Clone)]
pub struct FleetWorkerConfig {
    /// The wrapped job service's configuration (its runtime's
    /// `locality_id` is overwritten with the locality's id so counter
    /// paths name the true locality).
    pub service: ServiceConfig,
    /// The gateway locality completions are pushed to.
    pub gateway: usize,
    /// Completion-watch tick.
    pub pump_interval: Duration,
    /// Backoff before re-pushing a completion whose push failed.
    pub push_retry_backoff: Duration,
    /// Upper bound on how long a parked test body waits for release.
    pub park_timeout: Duration,
}

impl FleetWorkerConfig {
    /// Defaults around a service with `workers` runtime workers,
    /// pushing to `gateway`.
    pub fn new(gateway: usize, workers: usize) -> Self {
        Self {
            service: ServiceConfig::with_workers(workers),
            gateway,
            pump_interval: Duration::from_millis(1),
            push_retry_backoff: Duration::from_millis(10),
            park_timeout: Duration::from_secs(30),
        }
    }
}

/// Worker-side fleet accounting (exactly-once bookkeeping, counted).
#[derive(Default)]
pub struct WorkerCounters {
    /// Fresh keys admitted into the service.
    pub accepted: AtomicU64,
    /// Duplicate submissions absorbed (key already running/done).
    pub deduped: AtomicU64,
    /// Stale-epoch submissions refused.
    pub fenced: AtomicU64,
    /// Submissions the service's own admission refused.
    pub rejected: AtomicU64,
    /// Queued jobs cancelled and handed back by a drain.
    pub handed_back: AtomicU64,
    /// Completion pushes sent (first sends and retries).
    pub pushes_sent: AtomicU64,
    /// Pushes the gateway acknowledged.
    pub pushes_acked: AtomicU64,
    /// Pushes that failed in transit and were re-armed.
    pub push_failures: AtomicU64,
}

enum PushState {
    /// Job not terminal yet, or push not started.
    Idle,
    /// A push call is in flight, stamped with the epoch it carried. A
    /// reply only settles the entry if that epoch is still current —
    /// if a re-submission adopted a newer epoch while this push was in
    /// the air, the gateway fenced it and the outcome must go again.
    InFlight(u64, SharedFuture<u8>),
    /// The gateway acknowledged under the current epoch — done.
    Acked,
}

struct WorkerEntry {
    /// Newest epoch seen for this key; pushes carry it.
    epoch: u64,
    handle: JobHandle,
    /// Recorded outcome once terminal (epoch field re-stamped per push).
    done: Option<FleetOutcome>,
    push: PushState,
    retry_at: Option<Instant>,
}

struct WorkerShared {
    locality: Locality,
    service: Arc<JobService>,
    gateway: usize,
    entries: Mutex<HashMap<u64, WorkerEntry>>,
    draining: Arc<AtomicBool>,
    /// Parked test bodies wait here; `release_parked` opens it.
    park: Arc<(Mutex<bool>, Condvar)>,
    park_timeout: Duration,
    push_retry_backoff: Duration,
    counters: WorkerCounters,
    stop: AtomicBool,
}

/// One fleet worker: a job service joined to a locality, serving the
/// fleet actions. Dropping the worker stops its pump thread; the
/// wrapped service shuts down with the last `Arc` to it.
pub struct FleetWorker {
    shared: Arc<WorkerShared>,
    pump: Option<std::thread::JoinHandle<()>>,
}

impl FleetWorker {
    /// Install a fleet worker on `locality`: starts the service,
    /// registers `fleet/submit`, `fleet/drain`, and `sys/stats`, and
    /// spawns the completion pump.
    pub fn install(locality: &Locality, mut config: FleetWorkerConfig) -> Self {
        config.service.runtime.locality_id = locality.id();
        let service = Arc::new(JobService::new(config.service.clone()));
        let draining = Arc::new(AtomicBool::new(false));
        register_sys_stats(locality, Arc::clone(&service), Arc::clone(&draining));
        let shared = Arc::new(WorkerShared {
            locality: locality.clone(),
            service,
            gateway: config.gateway,
            entries: Mutex::new(HashMap::new()),
            draining,
            park: Arc::new((Mutex::new(false), Condvar::new())),
            park_timeout: config.park_timeout,
            push_retry_backoff: config.push_retry_backoff,
            counters: WorkerCounters::default(),
            stop: AtomicBool::new(false),
        });
        {
            let w = Arc::downgrade(&shared);
            locality.register_action(ACTION_SUBMIT, move |job: FleetJob| match w.upgrade() {
                Some(shared) => handle_submit(&shared, job),
                None => SubmitAck {
                    origin: 0,
                    verdict: SubmitVerdict::Draining,
                    reject: Some(WireReject::of(grain_service::RejectReason::ShuttingDown)),
                },
            });
        }
        {
            let w = Arc::downgrade(&shared);
            let id = locality.id() as u64;
            locality.register_action(ACTION_DRAIN, move |(): ()| match w.upgrade() {
                Some(shared) => handle_drain(&shared),
                None => DrainReport {
                    origin: id,
                    handed_back: Vec::new(),
                },
            });
        }
        let pump = {
            let w = Arc::downgrade(&shared);
            let tick = config.pump_interval;
            std::thread::Builder::new()
                .name(format!("grain-fleet-worker-{}", locality.id()))
                .spawn(move || loop {
                    std::thread::sleep(tick);
                    let Some(shared) = w.upgrade() else { return };
                    if shared.stop.load(Ordering::SeqCst) {
                        return;
                    }
                    pump_completions(&shared);
                })
                .expect("failed to spawn fleet worker pump")
        };
        Self {
            shared,
            pump: Some(pump),
        }
    }

    /// The wrapped job service (counters, pressure signal, ...).
    pub fn service(&self) -> &Arc<JobService> {
        &self.shared.service
    }

    /// Worker-side fleet counters.
    pub fn counters(&self) -> &WorkerCounters {
        &self.shared.counters
    }

    /// Whether the worker has announced a drain.
    pub fn draining(&self) -> bool {
        self.shared.draining.load(Ordering::SeqCst)
    }

    /// Open the park latch: every parked body (test hook
    /// [`FleetJob::park`]) proceeds. Idempotent.
    pub fn release_parked(&self) {
        let (lock, cv) = &*self.shared.park;
        *lock.lock() = true;
        cv.notify_all();
    }

    /// Keys currently tracked (admitted or finished) — test visibility.
    pub fn tracked_keys(&self) -> Vec<u64> {
        let mut keys: Vec<u64> = self.shared.entries.lock().keys().copied().collect();
        keys.sort_unstable();
        keys
    }
}

impl Drop for FleetWorker {
    fn drop(&mut self) {
        self.shared.stop.store(true, Ordering::SeqCst);
        self.release_parked();
        if let Some(h) = self.pump.take() {
            let _ = h.join();
        }
    }
}

/// Build the job body a [`FleetJob`] describes. Declarative in, closure
/// out: panics for fault injection, parks on the worker latch for the
/// chaos tests, expands a taskbench graph for shaped families, or runs
/// the flat spawn loop.
fn spawn_body(
    job: &FleetJob,
    park: Arc<(Mutex<bool>, Condvar)>,
    park_timeout: Duration,
) -> impl FnMut(&mut TaskContext<'_>) + Send + 'static {
    let faulty = job.faulty;
    let do_park = job.park;
    let family = family_of_code(job.family);
    let tasks = job.tasks;
    let grain_iters = job.grain_iters;
    let payload = job.payload_bytes;
    let seed = job.seed;
    move |ctx| {
        if do_park {
            let (lock, cv) = &*park;
            let mut released = lock.lock();
            let deadline = Instant::now() + park_timeout;
            while !*released {
                let left = deadline.saturating_duration_since(Instant::now());
                if left.is_zero() {
                    break;
                }
                cv.wait_for(&mut released, left);
            }
        }
        if faulty {
            panic!("fleet storm fault injection");
        }
        match spec_for_event(family, tasks, grain_iters, payload, seed) {
            Some(spec) => {
                let graph = Arc::new(spec.build());
                spawn_in_job(ctx, &graph);
            }
            None => {
                // Flat family: `tasks` independent children of the root.
                for t in 0..tasks {
                    let node_seed = seed ^ (t + 1);
                    ctx.spawn(move |_| {
                        std::hint::black_box(busy_work(node_seed, grain_iters));
                    });
                }
            }
        }
    }
}

fn handle_submit(shared: &Arc<WorkerShared>, job: FleetJob) -> SubmitAck {
    let origin = shared.locality.id() as u64;
    if shared.draining.load(Ordering::SeqCst) {
        return SubmitAck {
            origin,
            verdict: SubmitVerdict::Draining,
            reject: Some(WireReject::of(grain_service::RejectReason::ShuttingDown)),
        };
    }
    let mut entries = shared.entries.lock();
    if let Some(entry) = entries.get_mut(&job.key) {
        if job.epoch < entry.epoch {
            shared.counters.fenced.fetch_add(1, Ordering::Relaxed);
            return SubmitAck {
                origin,
                verdict: SubmitVerdict::Fenced,
                reject: None,
            };
        }
        // Adopt the newer epoch: the (re-)push carries it past the
        // gateway's fence.
        entry.epoch = job.epoch;
        shared.counters.deduped.fetch_add(1, Ordering::Relaxed);
        let verdict = if entry.done.is_some() {
            // Re-arm the push under the new epoch so the recorded
            // outcome reaches the gateway even if the original push
            // was fenced or lost.
            if matches!(entry.push, PushState::Acked) {
                entry.push = PushState::Idle;
                entry.retry_at = None;
            }
            SubmitVerdict::AlreadyDone
        } else {
            SubmitVerdict::Accepted
        };
        return SubmitAck {
            origin,
            verdict,
            reject: None,
        };
    }
    // Fresh key: admit into the service.
    let mut spec = JobSpec::new(job.name.clone(), job.tenant.clone()).estimated_tasks(job.tasks);
    if let Some(d) = job.deadline() {
        spec = spec.deadline(d);
    }
    let body = spawn_body(&job, Arc::clone(&shared.park), shared.park_timeout);
    let handle = shared.service.submit(spec, body);
    if handle.state() == JobState::Rejected {
        // Worker-side admission refused (queue full / breaker /
        // pressure): no entry — the gateway retries elsewhere.
        shared.counters.rejected.fetch_add(1, Ordering::Relaxed);
        let reject = handle
            .reject_reason()
            .map(WireReject::of)
            .unwrap_or(WireReject {
                code: 1,
                retry_after_ms: 0,
            });
        return SubmitAck {
            origin,
            verdict: SubmitVerdict::Rejected,
            reject: Some(reject),
        };
    }
    shared.counters.accepted.fetch_add(1, Ordering::Relaxed);
    entries.insert(
        job.key,
        WorkerEntry {
            epoch: job.epoch,
            handle,
            done: None,
            push: PushState::Idle,
            retry_at: None,
        },
    );
    SubmitAck {
        origin,
        verdict: SubmitVerdict::Accepted,
        reject: None,
    }
}

fn handle_drain(shared: &Arc<WorkerShared>) -> DrainReport {
    let origin = shared.locality.id() as u64;
    shared.draining.store(true, Ordering::SeqCst);
    let mut handed_back = Vec::new();
    let mut entries = shared.entries.lock();
    let queued: Vec<u64> = entries
        .iter()
        .filter(|(_, e)| e.done.is_none() && e.handle.state() == JobState::Queued)
        .map(|(k, _)| *k)
        .collect();
    for key in queued {
        let Some(entry) = entries.get(&key) else {
            continue;
        };
        entry.handle.cancel();
        // Hand back only if the cancel won while the job was still
        // queued (nothing ever ran). If admission raced us and the job
        // runs anyway — or the cancel hasn't settled within the grace
        // window — it completes through the normal push path instead.
        let won = entry
            .handle
            .wait_timeout(Duration::from_millis(100))
            .is_some_and(|o| o.state == JobState::Cancelled && o.tasks_spawned == 0);
        if won {
            entries.remove(&key);
            handed_back.push(key);
            shared.counters.handed_back.fetch_add(1, Ordering::Relaxed);
        }
    }
    handed_back.sort_unstable();
    DrainReport {
        origin,
        handed_back,
    }
}

/// One pump tick: record newly-terminal jobs and (re)push completions.
fn pump_completions(shared: &Arc<WorkerShared>) {
    let now = Instant::now();
    let mut to_send: Vec<(u64, FleetOutcome)> = Vec::new();
    {
        let mut entries = shared.entries.lock();
        for (key, entry) in entries.iter_mut() {
            if entry.done.is_none() {
                if let Some(outcome) = entry.handle.outcome() {
                    let fault_msg = outcome
                        .fault
                        .as_ref()
                        .map(|f| format!("{}", f.root_cause()));
                    entry.done = Some(FleetOutcome {
                        key: *key,
                        epoch: entry.epoch,
                        origin: shared.locality.id() as u64,
                        state: outcome.state,
                        tasks_completed: outcome.tasks_completed,
                        tasks_spawned: outcome.tasks_spawned,
                        tasks_faulted: outcome.tasks_faulted,
                        exec_ns: outcome.exec_ns,
                        retries: outcome.retries,
                        fault_msg,
                        reject: outcome.reject_reason.map(WireReject::of),
                    });
                }
            }
            let Some(done) = &entry.done else { continue };
            match &entry.push {
                PushState::Acked => continue,
                PushState::InFlight(sent_epoch, fut) => match fut.try_get() {
                    None => continue,
                    Some(Ok(_)) => {
                        if *sent_epoch == entry.epoch {
                            entry.push = PushState::Acked;
                            shared.counters.pushes_acked.fetch_add(1, Ordering::Relaxed);
                        } else {
                            // The reply acknowledges a stale-epoch push
                            // the gateway fenced; the current epoch is
                            // still unaccounted there. Push again.
                            entry.push = PushState::Idle;
                            entry.retry_at = None;
                        }
                    }
                    Some(Err(_)) => {
                        shared
                            .counters
                            .push_failures
                            .fetch_add(1, Ordering::Relaxed);
                        entry.push = PushState::Idle;
                        entry.retry_at = Some(now + shared.push_retry_backoff);
                    }
                },
                PushState::Idle => {
                    if entry.retry_at.is_some_and(|t| now < t) {
                        continue;
                    }
                    let mut out = done.clone();
                    out.epoch = entry.epoch;
                    to_send.push((*key, out));
                }
            }
        }
        for (key, out) in &to_send {
            shared.counters.pushes_sent.fetch_add(1, Ordering::Relaxed);
            let fut: SharedFuture<u8> =
                shared
                    .locality
                    .async_remote(shared.gateway, ACTION_COMPLETE, out);
            if let Some(entry) = entries.get_mut(key) {
                entry.push = PushState::InFlight(out.epoch, fut);
                entry.retry_at = None;
            }
        }
    }
}
