//! Gateway-side per-locality circuit breakers.
//!
//! The gateway keeps one breaker per *worker locality* (as opposed to
//! the per-tenant breakers inside each worker's service). Dispatch
//! failures — severed links, ack timeouts, worker-side admission
//! refusals — count against the destination; enough consecutive
//! failures open the breaker and placement stops routing there until a
//! cooldown elapses, after which a single probe dispatch is allowed
//! through (half-open).
//!
//! The state lives in the gateway's own memory, keyed by locality id:
//! **it survives peer death by construction**. A worker that dies with
//! its breaker open is still open when a replacement process rejoins
//! under the same id — the gateway re-admits it through the half-open
//! probe discipline rather than instantly flooding it.

#![deny(clippy::unwrap_used)]

use std::collections::HashMap;
use std::time::{Duration, Instant};

/// Breaker tuning.
#[derive(Debug, Clone)]
pub struct FleetBreakerConfig {
    /// Consecutive dispatch failures that open the breaker.
    pub failure_threshold: u32,
    /// How long an open breaker refuses before allowing a probe.
    pub cooldown: Duration,
}

impl Default for FleetBreakerConfig {
    fn default() -> Self {
        Self {
            failure_threshold: 3,
            cooldown: Duration::from_millis(200),
        }
    }
}

/// Breaker lifecycle state for one worker locality.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FleetBreakerState {
    /// Dispatches flow normally.
    Closed,
    /// Dispatches refused until the cooldown elapses.
    Open,
    /// Cooldown elapsed; one probe dispatch is in flight.
    HalfOpen,
}

struct Entry {
    consecutive_failures: u32,
    state: FleetBreakerState,
    opened_at: Option<Instant>,
    opens: u64,
}

impl Entry {
    fn new() -> Self {
        Self {
            consecutive_failures: 0,
            state: FleetBreakerState::Closed,
            opened_at: None,
            opens: 0,
        }
    }
}

/// The per-locality breaker map. Not thread-safe by itself — the
/// gateway guards it with its own lock.
pub struct LocalityBreakers {
    config: FleetBreakerConfig,
    entries: HashMap<usize, Entry>,
}

impl LocalityBreakers {
    /// Empty map with `config` tuning.
    pub fn new(config: FleetBreakerConfig) -> Self {
        Self {
            config,
            entries: HashMap::new(),
        }
    }

    /// May the gateway dispatch to `worker` right now? `Open` breakers
    /// transition to `HalfOpen` (and answer yes, once) after the
    /// cooldown.
    pub fn allow(&mut self, worker: usize, now: Instant) -> bool {
        let cooldown = self.config.cooldown;
        let e = self.entries.entry(worker).or_insert_with(Entry::new);
        match e.state {
            FleetBreakerState::Closed => true,
            FleetBreakerState::HalfOpen => false, // one probe at a time
            FleetBreakerState::Open => {
                let elapsed = e.opened_at.map(|t| now.duration_since(t)) >= Some(cooldown);
                if elapsed {
                    e.state = FleetBreakerState::HalfOpen;
                    true
                } else {
                    false
                }
            }
        }
    }

    /// Non-mutating preview of [`LocalityBreakers::allow`]: would a
    /// dispatch be allowed right now? Placement uses this to scan
    /// candidates without consuming the half-open probe slot.
    pub fn would_allow(&self, worker: usize, now: Instant) -> bool {
        match self.entries.get(&worker) {
            None => true,
            Some(e) => match e.state {
                FleetBreakerState::Closed => true,
                FleetBreakerState::HalfOpen => false,
                FleetBreakerState::Open => {
                    e.opened_at.map(|t| now.duration_since(t)) >= Some(self.config.cooldown)
                }
            },
        }
    }

    /// Record a successful dispatch to `worker` (acked and accepted).
    pub fn record_success(&mut self, worker: usize) {
        let e = self.entries.entry(worker).or_insert_with(Entry::new);
        e.consecutive_failures = 0;
        e.state = FleetBreakerState::Closed;
        e.opened_at = None;
    }

    /// Record a failed dispatch (disconnect, ack timeout, refusal).
    pub fn record_failure(&mut self, worker: usize, now: Instant) {
        let threshold = self.config.failure_threshold;
        let e = self.entries.entry(worker).or_insert_with(Entry::new);
        e.consecutive_failures += 1;
        let trip = match e.state {
            // A failed half-open probe re-opens immediately.
            FleetBreakerState::HalfOpen => true,
            _ => e.consecutive_failures >= threshold,
        };
        if trip && e.state != FleetBreakerState::Open {
            e.state = FleetBreakerState::Open;
            e.opened_at = Some(now);
            e.opens += 1;
        } else if trip {
            e.opened_at = Some(now);
        }
    }

    /// The breaker state recorded for `worker` — present even if the
    /// worker is long dead (state outlives the peer).
    pub fn state(&self, worker: usize) -> Option<FleetBreakerState> {
        self.entries.get(&worker).map(|e| e.state)
    }

    /// How many times `worker`'s breaker has opened.
    pub fn opens(&self, worker: usize) -> u64 {
        self.entries.get(&worker).map_or(0, |e| e.opens)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> FleetBreakerConfig {
        FleetBreakerConfig {
            failure_threshold: 2,
            cooldown: Duration::from_millis(50),
        }
    }

    #[test]
    fn opens_after_threshold_and_probes_after_cooldown() {
        let mut b = LocalityBreakers::new(cfg());
        let t0 = Instant::now();
        assert!(b.allow(1, t0));
        b.record_failure(1, t0);
        assert!(b.allow(1, t0), "one failure below threshold");
        b.record_failure(1, t0);
        assert_eq!(b.state(1), Some(FleetBreakerState::Open));
        assert!(!b.allow(1, t0), "open refuses");
        let later = t0 + Duration::from_millis(60);
        assert!(b.allow(1, later), "cooldown elapsed: one probe");
        assert_eq!(b.state(1), Some(FleetBreakerState::HalfOpen));
        assert!(!b.allow(1, later), "only one probe at a time");
        b.record_success(1);
        assert_eq!(b.state(1), Some(FleetBreakerState::Closed));
        assert!(b.allow(1, later));
        assert_eq!(b.opens(1), 1);
    }

    #[test]
    fn failed_probe_reopens() {
        let mut b = LocalityBreakers::new(cfg());
        let t0 = Instant::now();
        b.record_failure(1, t0);
        b.record_failure(1, t0);
        let later = t0 + Duration::from_millis(60);
        assert!(b.allow(1, later));
        b.record_failure(1, later);
        assert_eq!(b.state(1), Some(FleetBreakerState::Open));
        assert!(!b.allow(1, later + Duration::from_millis(10)));
        assert_eq!(b.opens(1), 2);
    }

    #[test]
    fn state_survives_without_the_peer() {
        // The map never hears about peers directly — state is keyed by
        // id and persists regardless of liveness. Trip worker 3, then
        // "kill" it (nothing to do), and the record is still there.
        let mut b = LocalityBreakers::new(cfg());
        let t0 = Instant::now();
        b.record_failure(3, t0);
        b.record_failure(3, t0);
        assert_eq!(b.state(3), Some(FleetBreakerState::Open));
        assert_eq!(b.opens(3), 1);
    }
}
