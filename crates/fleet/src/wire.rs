//! Wire-format types for the fleet protocol.
//!
//! Everything the gateway and workers exchange is a hand-encoded
//! [`Wire`] struct: a load report ([`WorkerStats`]), a routed job
//! description ([`FleetJob`]), the worker's admission verdict
//! ([`SubmitAck`]), the pushed completion ([`FleetOutcome`]), and the
//! drain hand-back ([`DrainReport`]). Job *bodies* never cross the wire
//! — a [`FleetJob`] is a declarative workload (a `grain-taskbench`
//! graph family plus shape/grain/payload/seed) that the worker expands
//! locally, so local and remote execution compute bit-identical DAGs.
//!
//! Encodings are versionless and positional like the rest of the
//! parcelport codec; every struct round-trips exactly (asserted by the
//! tests below) and decodes defensively — a truncated or hostile frame
//! surfaces as a [`CodecError`], never a panic.

#![deny(clippy::unwrap_used)]

use grain_net::codec::{Reader, Writer};
use grain_net::{CodecError, Wire};
use grain_service::{JobState, RejectReason};
use grain_sim::storm::GraphFamily;
use std::time::Duration;

/// Action name a worker registers for load polling.
pub const ACTION_STATS: &str = "sys/stats";
/// Action name a worker registers for routed job submission.
pub const ACTION_SUBMIT: &str = "fleet/submit";
/// Action name a worker registers for graceful drain.
pub const ACTION_DRAIN: &str = "fleet/drain";
/// Action name the *gateway* registers for completion pushes.
pub const ACTION_COMPLETE: &str = "fleet/complete";

/// Compact load report returned by the `sys/stats` action: the
/// `/service/pressure/{level,overhead,queue-fill}` and
/// `/threads/idle-rate` counters of one locality, sampled at call time.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkerStats {
    /// The reporting locality.
    pub locality: u64,
    /// Whether the worker has announced a drain (stops accepting).
    pub draining: bool,
    /// `/service/pressure/level`: 0 nominal, 1 elevated, 2 critical.
    pub pressure_level: u8,
    /// `/service/pressure/overhead` (EWMA overhead fraction, Eq. 1
    /// applied to the service window).
    pub overhead: f64,
    /// `/service/pressure/queue-fill` (0.0..=1.0).
    pub queue_fill: f64,
    /// `/threads{locality#N/total}/idle-rate` of the worker's job
    /// runtime (Eq. 1).
    pub idle_rate: f64,
    /// Jobs waiting in the worker's admission queues.
    pub queued_jobs: u64,
    /// Jobs admitted and not yet terminal.
    pub running_jobs: u64,
    /// `/autotune/grain`: mean tenant grain of the worker's autotune
    /// subsystem (0 when the worker runs none).
    pub autotune_grain: u64,
    /// `/autotune/converged` == 1.0: every autotune tenant on the
    /// worker sits in its hysteresis band. Workers without autotune
    /// report `true` (nothing is probing there).
    pub autotune_converged: bool,
}

impl Wire for WorkerStats {
    fn encode(&self, w: &mut Writer) {
        w.u64(self.locality);
        w.u8(u8::from(self.draining));
        w.u8(self.pressure_level);
        w.f64(self.overhead);
        w.f64(self.queue_fill);
        w.f64(self.idle_rate);
        w.u64(self.queued_jobs);
        w.u64(self.running_jobs);
        w.u64(self.autotune_grain);
        w.u8(u8::from(self.autotune_converged));
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        Ok(Self {
            locality: r.u64()?,
            draining: r.u8()? != 0,
            pressure_level: r.u8()?,
            overhead: r.f64()?,
            queue_fill: r.f64()?,
            idle_rate: r.f64()?,
            queued_jobs: r.u64()?,
            running_jobs: r.u64()?,
            autotune_grain: r.u64()?,
            autotune_converged: r.u8()? != 0,
        })
    }
}

/// Wire code of a [`GraphFamily`].
pub fn family_code(f: GraphFamily) -> u8 {
    match f {
        GraphFamily::Flat => 0,
        GraphFamily::Stencil => 1,
        GraphFamily::Butterfly => 2,
        GraphFamily::Tree => 3,
        GraphFamily::RandomDag => 4,
        GraphFamily::Sweep => 5,
    }
}

/// Inverse of [`family_code`]; unknown codes fall back to `Flat` (a
/// forward-compatible degraded shape rather than a decode error).
pub fn family_of_code(c: u8) -> GraphFamily {
    match c {
        1 => GraphFamily::Stencil,
        2 => GraphFamily::Butterfly,
        3 => GraphFamily::Tree,
        4 => GraphFamily::RandomDag,
        5 => GraphFamily::Sweep,
        _ => GraphFamily::Flat,
    }
}

/// A routed job: idempotency key, fencing epoch, and a declarative
/// workload the worker expands into a real task DAG.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FleetJob {
    /// Gateway-assigned idempotency key, unique per logical job. A
    /// worker receiving a key twice must not execute the body twice.
    pub key: u64,
    /// Submission epoch, bumped by the gateway on every dispatch
    /// attempt. Completions carrying an epoch older than the gateway's
    /// current lease are fenced (never double-counted).
    pub epoch: u64,
    /// Human-readable job name.
    pub name: String,
    /// Owning tenant (worker-side admission accounts to it).
    pub tenant: String,
    /// Graph family code ([`family_code`]); 0 = flat spawn loop.
    pub family: u8,
    /// Task budget (children for flat, graph size target otherwise).
    pub tasks: u64,
    /// Busy-work iterations per task.
    pub grain_iters: u64,
    /// Bytes flowing along each graph edge.
    pub payload_bytes: u32,
    /// Graph seed (shape + per-node work derivation).
    pub seed: u64,
    /// Deadline in milliseconds relative to worker admission; 0 = none.
    pub deadline_ms: u64,
    /// Chaos: the body panics instead of working (storm fault windows).
    pub faulty: bool,
    /// Test hook: the body parks on the worker's release latch before
    /// working, pinning the job "in flight" deterministically.
    pub park: bool,
}

impl FleetJob {
    /// The job's deadline as a [`Duration`], if any.
    pub fn deadline(&self) -> Option<Duration> {
        (self.deadline_ms > 0).then(|| Duration::from_millis(self.deadline_ms))
    }
}

impl Wire for FleetJob {
    fn encode(&self, w: &mut Writer) {
        w.u64(self.key);
        w.u64(self.epoch);
        w.string(&self.name);
        w.string(&self.tenant);
        w.u8(self.family);
        w.u64(self.tasks);
        w.u64(self.grain_iters);
        w.u32(self.payload_bytes);
        w.u64(self.seed);
        w.u64(self.deadline_ms);
        w.u8(u8::from(self.faulty));
        w.u8(u8::from(self.park));
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        Ok(Self {
            key: r.u64()?,
            epoch: r.u64()?,
            name: r.string()?,
            tenant: r.string()?,
            family: r.u8()?,
            tasks: r.u64()?,
            grain_iters: r.u64()?,
            payload_bytes: r.u32()?,
            seed: r.u64()?,
            deadline_ms: r.u64()?,
            faulty: r.u8()? != 0,
            park: r.u8()? != 0,
        })
    }
}

/// Coarse refusal class in wire form, mirroring
/// [`grain_service::RejectReason`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WireReject {
    /// 0 queue-full, 1 shed, 2 breaker-open, 3 shutting-down,
    /// 4 fleet-unavailable.
    pub code: u8,
    /// Suggested back-off in milliseconds (breaker / fleet refusals).
    pub retry_after_ms: u64,
}

impl WireReject {
    /// Encode a [`RejectReason`].
    pub fn of(reason: RejectReason) -> Self {
        match reason {
            RejectReason::QueueFull => Self {
                code: 0,
                retry_after_ms: 0,
            },
            RejectReason::Shed => Self {
                code: 1,
                retry_after_ms: 0,
            },
            RejectReason::BreakerOpen => Self {
                code: 2,
                retry_after_ms: 0,
            },
            RejectReason::ShuttingDown => Self {
                code: 3,
                retry_after_ms: 0,
            },
            RejectReason::FleetUnavailable { retry_after } => Self {
                code: 4,
                retry_after_ms: retry_after.as_millis() as u64,
            },
        }
    }

    /// Decode back to a [`RejectReason`]; unknown codes degrade to
    /// `Shed` (refused under load) rather than failing the frame.
    pub fn reason(self) -> RejectReason {
        match self.code {
            0 => RejectReason::QueueFull,
            2 => RejectReason::BreakerOpen,
            3 => RejectReason::ShuttingDown,
            4 => RejectReason::FleetUnavailable {
                retry_after: Duration::from_millis(self.retry_after_ms),
            },
            _ => RejectReason::Shed,
        }
    }
}

impl Wire for WireReject {
    fn encode(&self, w: &mut Writer) {
        w.u8(self.code);
        w.u64(self.retry_after_ms);
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        Ok(Self {
            code: r.u8()?,
            retry_after_ms: r.u64()?,
        })
    }
}

/// Worker verdict on a routed submission.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SubmitVerdict {
    /// Admitted (or already running under this key — idempotent).
    Accepted,
    /// The key already completed here; the recorded outcome was
    /// re-pushed under the submission's epoch.
    AlreadyDone,
    /// The submission's epoch is older than one this worker has seen:
    /// a stale duplicate, dropped.
    Fenced,
    /// The worker is draining and accepts no new work.
    Draining,
    /// Worker-side admission refused the job.
    Rejected,
}

impl SubmitVerdict {
    fn code(self) -> u8 {
        match self {
            SubmitVerdict::Accepted => 0,
            SubmitVerdict::AlreadyDone => 1,
            SubmitVerdict::Fenced => 2,
            SubmitVerdict::Draining => 3,
            SubmitVerdict::Rejected => 4,
        }
    }

    fn of_code(c: u8) -> Result<Self, CodecError> {
        Ok(match c {
            0 => SubmitVerdict::Accepted,
            1 => SubmitVerdict::AlreadyDone,
            2 => SubmitVerdict::Fenced,
            3 => SubmitVerdict::Draining,
            4 => SubmitVerdict::Rejected,
            other => return Err(CodecError::Tag(other)),
        })
    }
}

/// Reply to `fleet/submit`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SubmitAck {
    /// The answering worker.
    pub origin: u64,
    /// What the worker decided.
    pub verdict: SubmitVerdict,
    /// For [`SubmitVerdict::Rejected`]/`Draining`: the refusal class.
    pub reject: Option<WireReject>,
}

impl Wire for SubmitAck {
    fn encode(&self, w: &mut Writer) {
        w.u64(self.origin);
        w.u8(self.verdict.code());
        self.reject.encode(w);
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        Ok(Self {
            origin: r.u64()?,
            verdict: SubmitVerdict::of_code(r.u8()?)?,
            reject: Option::<WireReject>::decode(r)?,
        })
    }
}

/// Terminal-state wire codes for [`JobState`].
fn state_code(s: JobState) -> u8 {
    match s {
        JobState::Completed => 0,
        JobState::Failed => 1,
        JobState::Cancelled => 2,
        JobState::TimedOut => 3,
        JobState::Rejected => 4,
        // Non-terminal states never cross the wire; encode defensively
        // as Failed rather than panicking in a network thread.
        _ => 1,
    }
}

/// Inverse of [`state_code`].
fn state_of_code(c: u8) -> Result<JobState, CodecError> {
    Ok(match c {
        0 => JobState::Completed,
        1 => JobState::Failed,
        2 => JobState::Cancelled,
        3 => JobState::TimedOut,
        4 => JobState::Rejected,
        other => return Err(CodecError::Tag(other)),
    })
}

/// A completion push: the worker-side [`grain_service::JobOutcome`]
/// projected onto the wire, tagged with the job's key, the epoch the
/// worker last saw, and the originating locality.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FleetOutcome {
    /// The finished job's idempotency key.
    pub key: u64,
    /// The newest epoch the worker saw for this key; the gateway fences
    /// pushes older than its current lease epoch.
    pub epoch: u64,
    /// The worker the job actually ran on.
    pub origin: u64,
    /// Terminal state.
    pub state: JobState,
    /// Tasks that ran to completion.
    pub tasks_completed: u64,
    /// Total tasks entered into the job's group.
    pub tasks_spawned: u64,
    /// Tasks faulted in the last attempt.
    pub tasks_faulted: u64,
    /// Cumulative execution nanoseconds.
    pub exec_ns: u64,
    /// Worker-side retries.
    pub retries: u64,
    /// Root-cause message of the first fault, if the job failed.
    pub fault_msg: Option<String>,
    /// Refusal class for worker-side rejections.
    pub reject: Option<WireReject>,
}

impl Wire for FleetOutcome {
    fn encode(&self, w: &mut Writer) {
        w.u64(self.key);
        w.u64(self.epoch);
        w.u64(self.origin);
        w.u8(state_code(self.state));
        w.u64(self.tasks_completed);
        w.u64(self.tasks_spawned);
        w.u64(self.tasks_faulted);
        w.u64(self.exec_ns);
        w.u64(self.retries);
        self.fault_msg.encode(w);
        self.reject.encode(w);
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        Ok(Self {
            key: r.u64()?,
            epoch: r.u64()?,
            origin: r.u64()?,
            state: state_of_code(r.u8()?)?,
            tasks_completed: r.u64()?,
            tasks_spawned: r.u64()?,
            tasks_faulted: r.u64()?,
            exec_ns: r.u64()?,
            retries: r.u64()?,
            fault_msg: Option::<String>::decode(r)?,
            reject: Option::<WireReject>::decode(r)?,
        })
    }
}

/// Reply to `fleet/drain`: the worker stopped accepting; every job that
/// was still *queued* (never started) was cancelled locally and its key
/// handed back for re-dispatch. Running jobs finish and push normally.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DrainReport {
    /// The draining worker.
    pub origin: u64,
    /// Keys of queued jobs handed back (zero-loss: each goes back to
    /// the gateway's pending set).
    pub handed_back: Vec<u64>,
}

impl Wire for DrainReport {
    fn encode(&self, w: &mut Writer) {
        w.u64(self.origin);
        self.handed_back.encode(w);
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        Ok(Self {
            origin: r.u64()?,
            handed_back: Vec::<u64>::decode(r)?,
        })
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use grain_net::codec::{from_bytes, to_bytes};

    fn job() -> FleetJob {
        FleetJob {
            key: 42,
            epoch: 3,
            name: "alpha-7".into(),
            tenant: "alpha".into(),
            family: family_code(GraphFamily::RandomDag),
            tasks: 24,
            grain_iters: 1000,
            payload_bytes: 64,
            seed: 7,
            deadline_ms: 250,
            faulty: false,
            park: true,
        }
    }

    #[test]
    fn all_types_round_trip() {
        let stats = WorkerStats {
            locality: 2,
            draining: true,
            pressure_level: 1,
            overhead: 0.25,
            queue_fill: 0.5,
            idle_rate: 0.125,
            queued_jobs: 3,
            running_jobs: 4,
            autotune_grain: 4096,
            autotune_converged: false,
        };
        assert_eq!(from_bytes::<WorkerStats>(&to_bytes(&stats)).unwrap(), stats);
        assert_eq!(from_bytes::<FleetJob>(&to_bytes(&job())).unwrap(), job());
        let ack = SubmitAck {
            origin: 1,
            verdict: SubmitVerdict::Rejected,
            reject: Some(WireReject {
                code: 2,
                retry_after_ms: 40,
            }),
        };
        assert_eq!(from_bytes::<SubmitAck>(&to_bytes(&ack)).unwrap(), ack);
        let done = FleetOutcome {
            key: 42,
            epoch: 4,
            origin: 2,
            state: JobState::Completed,
            tasks_completed: 25,
            tasks_spawned: 25,
            tasks_faulted: 0,
            exec_ns: 123_456,
            retries: 0,
            fault_msg: None,
            reject: None,
        };
        assert_eq!(from_bytes::<FleetOutcome>(&to_bytes(&done)).unwrap(), done);
        let drain = DrainReport {
            origin: 1,
            handed_back: vec![1, 2, 3],
        };
        assert_eq!(from_bytes::<DrainReport>(&to_bytes(&drain)).unwrap(), drain);
    }

    #[test]
    fn truncated_frames_error_instead_of_panicking() {
        let bytes = to_bytes(&job());
        for cut in 0..bytes.len() {
            assert!(from_bytes::<FleetJob>(&bytes[..cut]).is_err());
        }
    }

    #[test]
    fn reject_codes_round_trip_reasons() {
        for reason in [
            RejectReason::QueueFull,
            RejectReason::Shed,
            RejectReason::BreakerOpen,
            RejectReason::ShuttingDown,
            RejectReason::FleetUnavailable {
                retry_after: Duration::from_millis(75),
            },
        ] {
            assert_eq!(WireReject::of(reason).reason(), reason);
        }
    }

    #[test]
    fn family_codes_round_trip() {
        for f in [
            GraphFamily::Flat,
            GraphFamily::Stencil,
            GraphFamily::Butterfly,
            GraphFamily::Tree,
            GraphFamily::RandomDag,
            GraphFamily::Sweep,
        ] {
            assert_eq!(family_of_code(family_code(f)), f);
        }
    }
}
