//! The `sys/stats` action: one locality's load, pollable by any other.
//!
//! Placement needs a cheap, uniform view of every worker's pressure;
//! rather than gossiping raw counter dumps, each worker samples its own
//! `/service/pressure/{level,overhead,queue-fill}` counters (from the
//! service registry) and `/threads{locality#N/total}/idle-rate` (from
//! the job runtime's registry — they are *separate* registries) into a
//! compact [`WorkerStats`] and serves it as a registered remote action.
//! The action is useful standalone: `async_remote::<(), WorkerStats>`
//! against any locality that registered it returns its live load.

#![deny(clippy::unwrap_used)]

use crate::wire::{WorkerStats, ACTION_STATS};
use grain_net::Locality;
use grain_service::JobService;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// Sample one worker's load into a [`WorkerStats`] report.
///
/// Counter reads go through the registries (the same surface a
/// dashboard would scrape), so the report is exactly what the counter
/// paths publish; a missing counter reads as 0 rather than failing the
/// poll.
pub fn sample_stats(service: &JobService, locality_id: usize, draining: bool) -> WorkerStats {
    let sreg = service.registry();
    let read = |path: &str| sreg.query(path).map(|v| v.value).unwrap_or(0.0);
    let idle_path = format!("/threads{{locality#{locality_id}/total}}/idle-rate");
    let idle_rate = service
        .runtime()
        .registry()
        .query(&idle_path)
        .map(|v| v.value)
        .unwrap_or(0.0);
    WorkerStats {
        locality: locality_id as u64,
        draining,
        pressure_level: read("/service/pressure/level") as u8,
        overhead: read("/service/pressure/overhead"),
        queue_fill: read("/service/pressure/queue-fill"),
        idle_rate,
        queued_jobs: service.queue_len() as u64,
        running_jobs: service.running_len() as u64,
        autotune_grain: read("/autotune/grain") as u64,
        // A worker with no autotune subsystem registered reports
        // converged: nothing on it is probing, so placement should not
        // penalize it. The query error (not the 0.0 fallback) is the
        // discriminator.
        autotune_converged: sreg
            .query("/autotune/converged")
            .map(|v| v.value >= 1.0)
            .unwrap_or(true),
    }
}

/// Register the `sys/stats` action on `locality`, serving live samples
/// of `service`. The `draining` flag is shared with the caller (the
/// fleet worker flips it on drain) so polled reports advertise drains
/// without a second action.
pub fn register_sys_stats(
    locality: &Locality,
    service: Arc<JobService>,
    draining: Arc<AtomicBool>,
) {
    let id = locality.id();
    locality.register_action(ACTION_STATS, move |(): ()| {
        sample_stats(&service, id, draining.load(Ordering::SeqCst))
    });
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use grain_net::Fabric;
    use grain_runtime::RuntimeConfig;
    use grain_service::{JobSpec, ServiceConfig};

    #[test]
    fn stats_poll_round_trips_between_localities() {
        let fabric = Fabric::loopback(2, |i| RuntimeConfig {
            workers: 1,
            locality_id: i,
            ..RuntimeConfig::default()
        });
        let mut cfg = ServiceConfig::with_workers(1);
        cfg.runtime.locality_id = 1;
        let service = Arc::new(JobService::new(cfg));
        // Run something so the pressure loop has samples.
        let h = service.submit(JobSpec::new("warm", "t"), |ctx| {
            for _ in 0..4 {
                ctx.spawn(|_| {
                    std::hint::black_box(grain_taskbench::work::busy_work(1, 2_000));
                });
            }
        });
        h.wait();
        let draining = Arc::new(AtomicBool::new(false));
        register_sys_stats(
            fabric.locality(1),
            Arc::clone(&service),
            Arc::clone(&draining),
        );
        let polled: WorkerStats = (*fabric
            .locality(0)
            .async_remote::<(), WorkerStats>(1, ACTION_STATS, &())
            .wait()
            .expect("stats poll settles"))
        .clone();
        assert_eq!(polled.locality, 1);
        assert!(!polled.draining);
        assert!(polled.pressure_level <= 2);
        assert!(polled.overhead >= 0.0 && polled.queue_fill >= 0.0);
        draining.store(true, Ordering::SeqCst);
        let polled: WorkerStats = (*fabric
            .locality(0)
            .async_remote::<(), WorkerStats>(1, ACTION_STATS, &())
            .wait()
            .expect("stats poll settles"))
        .clone();
        assert!(polled.draining, "drain flag rides the same action");
        fabric.shutdown();
    }
}
