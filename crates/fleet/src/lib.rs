//! grain-fleet: a distributed serving plane where jobs survive
//! locality death.
//!
//! The [`grain_service`] crate runs a multi-tenant job service on *one*
//! locality; [`grain_net`] gives us remote actions between localities.
//! This crate composes the two into a serving fleet:
//!
//! * A **gateway** ([`FleetGateway`]) accepts tenant jobs and routes
//!   them to worker localities over the parcelport. Placement is
//!   pressure-driven: workers publish their load through the
//!   [`wire::ACTION_STATS`] remote action (sampled from the service's
//!   `/service/pressure/*` counters and the runtime's idle-rate), and
//!   the gateway polls, caches, and scores.
//! * Each worker locality installs a [`FleetWorker`], which adapts
//!   incoming [`wire::FleetJob`] descriptions into local
//!   [`grain_service::JobService`] submissions and pushes terminal
//!   outcomes back.
//! * Every routed job carries an **idempotency key** and a **submission
//!   epoch**. The gateway leases each dispatch; when a worker dies
//!   (severed links, liveness expiry) its leases are orphaned and
//!   re-dispatched under a bumped epoch. Completion accounting is
//!   exactly-once *at the gateway*: a push carrying a stale epoch is
//!   fenced, a second push for a settled job is a counted duplicate,
//!   and the ledger identity `submitted == completed + failed +
//!   timed-out + cancelled + rejected + shed` holds at quiescence.
//! * Failure handling stacks: per-worker retry with backoff, optional
//!   lease-timeout hedging, gateway-side per-locality circuit breakers
//!   ([`LocalityBreakers`]) whose state survives peer death, graceful
//!   drain with zero-loss hand-back, and quorum-based degradation that
//!   sheds deadline-carrying jobs with
//!   [`grain_service::RejectReason::FleetUnavailable`] instead of
//!   letting them hang.
//!
//! The `fleetstorm` binary (crates/bench) drives a seeded multi-tenant
//! storm through kill / drain / partition / heal chaos and asserts the
//! ledger conservation and replay determinism end to end.

pub mod breaker;
pub mod gateway;
pub mod stats;
pub mod wire;
pub mod worker;

pub use breaker::{FleetBreakerConfig, FleetBreakerState, LocalityBreakers};
pub use gateway::{
    FleetConfig, FleetCounters, FleetGateway, FleetJobHandle, FleetJobSpec, FleetLedger, Placement,
};
pub use stats::{register_sys_stats, sample_stats};
pub use wire::{DrainReport, FleetJob, FleetOutcome, SubmitAck, SubmitVerdict, WorkerStats};
pub use worker::{FleetWorker, FleetWorkerConfig, WorkerCounters};
