//! The fleet gateway: tenant submissions in, placed jobs out, and a
//! ledger that survives worker death.
//!
//! ## Lifecycle of a routed job
//!
//! `submit` assigns an idempotency key and parks the job *pending*. The
//! pump thread places it on a worker (pressure-driven, see below) and
//! sends `fleet/submit` — every dispatch attempt bumps the job's
//! **epoch**, so anything an older attempt left behind is fenceable.
//! The ack moves the job to *leased*; the worker's `fleet/complete`
//! push makes it terminal. Exactly-once completion accounting follows
//! from one rule: only a push carrying the job's **current** epoch is
//! accepted; anything older (a partitioned worker's parked push, a
//! duplicate, a push racing a re-dispatch) bumps `fenced`/`duplicate`
//! and changes nothing.
//!
//! ## Failure handling
//!
//! * **Death** — the pump diffs leases against `connected_peers()`
//!   every tick (the liveness monitor turns silent partitions into
//!   disconnects); a lease on a gone worker is *orphaned* and the job
//!   re-enters pending for re-dispatch.
//! * **Lease timeout** — an optional hedge: a lease older than
//!   `lease_timeout` re-dispatches (with a fresh epoch, fencing the
//!   original if it ever answers).
//! * **Refusals / transport errors** — retry with per-worker backoff;
//!   repeated failures trip the gateway-side per-locality breaker
//!   ([`crate::breaker`]), whose state outlives the peer.
//! * **Drain** — [`FleetGateway::drain`] asks the worker to stop
//!   accepting; handed-back keys re-enter pending with zero loss.
//! * **Quorum degradation** — when live, accepting capacity drops
//!   below the configured quorum fraction, deadline-carrying jobs are
//!   shed with [`RejectReason::FleetUnavailable`] (carrying a
//!   `retry_after` hint) instead of hanging; deadline-less jobs wait.
//!
//! ## Placement
//!
//! The pump polls each candidate's `sys/stats` action (cached for
//! `stats_max_age`) and scores `pressure level ≫ queue fill ≫ queued
//! jobs ≫ overhead`; draining, dead, breaker-open, and backing-off
//! workers are ineligible. Ties break toward the lowest locality id so
//! placement is deterministic given equal load reports.

#![deny(clippy::unwrap_used)]

use crate::breaker::{FleetBreakerConfig, FleetBreakerState, LocalityBreakers};
use crate::wire::{
    family_code, FleetJob, FleetOutcome, SubmitAck, SubmitVerdict, WireReject, WorkerStats,
    ACTION_COMPLETE, ACTION_DRAIN, ACTION_STATS, ACTION_SUBMIT,
};
use grain_counters::registry::RawView;
use grain_counters::sync::{Condvar, Mutex};
use grain_counters::{RawCounter, Registry, RegistryError, Unit};
use grain_net::Locality;
use grain_runtime::{SharedFuture, TaskError};
use grain_service::{JobOutcome, JobState, RejectReason};
use grain_sim::storm::GraphFamily;
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Placement policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Placement {
    /// Lowest load score among eligible workers (ties → lowest id).
    LeastLoaded,
    /// Prefer one worker while it is eligible; fall back to
    /// least-loaded when it is not. Deterministic harness pinning.
    Prefer(usize),
}

/// Gateway tuning.
#[derive(Debug, Clone)]
pub struct FleetConfig {
    /// Worker locality ids the gateway may place on.
    pub workers: Vec<usize>,
    /// Pump tick (placement, ack harvest, death sweep).
    pub pump_interval: Duration,
    /// Hedge: re-dispatch a lease older than this (`None` = never).
    pub lease_timeout: Option<Duration>,
    /// Give up on a dispatch whose ack hasn't settled within this.
    pub ack_timeout: Duration,
    /// Per-worker backoff after a refused or failed dispatch.
    pub retry_backoff: Duration,
    /// Dispatch attempts per job before it goes terminal with its last
    /// refusal.
    pub max_dispatches: u32,
    /// Fraction of the fleet that must be alive *and accepting* to
    /// place deadline-carrying jobs; below it they are shed.
    pub quorum: f64,
    /// `retry_after` hint stamped on quorum sheds.
    pub shed_retry_after: Duration,
    /// How long a polled stats sample stays fresh.
    pub stats_max_age: Duration,
    /// Per-locality breaker tuning.
    pub breaker: FleetBreakerConfig,
    /// Placement policy.
    pub placement: Placement,
}

impl FleetConfig {
    /// Defaults for a fleet of `workers`.
    pub fn new(workers: Vec<usize>) -> Self {
        Self {
            workers,
            pump_interval: Duration::from_millis(1),
            lease_timeout: None,
            ack_timeout: Duration::from_secs(2),
            retry_backoff: Duration::from_millis(10),
            max_dispatches: 8,
            quorum: 0.0,
            shed_retry_after: Duration::from_millis(100),
            stats_max_age: Duration::from_millis(5),
            breaker: FleetBreakerConfig::default(),
            placement: Placement::LeastLoaded,
        }
    }
}

/// Client-facing job description; the gateway turns it into a keyed,
/// epoch-stamped [`FleetJob`].
#[derive(Debug, Clone)]
pub struct FleetJobSpec {
    /// Job name (reports, worker-side counter instance).
    pub name: String,
    /// Owning tenant.
    pub tenant: String,
    /// Graph family of the body.
    pub family: GraphFamily,
    /// Task budget.
    pub tasks: u64,
    /// Busy-work iterations per task.
    pub grain_iters: u64,
    /// Bytes per graph edge.
    pub payload_bytes: u32,
    /// Graph seed.
    pub seed: u64,
    /// Deadline relative to worker admission.
    pub deadline: Option<Duration>,
    /// Chaos: the body panics.
    pub faulty: bool,
    /// Test hook: the body parks on the worker latch.
    pub park: bool,
}

impl FleetJobSpec {
    /// A flat `tasks`-children job with the given grain.
    pub fn new(name: impl Into<String>, tenant: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            tenant: tenant.into(),
            family: GraphFamily::Flat,
            tasks: 1,
            grain_iters: 1000,
            payload_bytes: 0,
            seed: 0,
            deadline: None,
            faulty: false,
            park: false,
        }
    }

    /// Set the graph family.
    pub fn family(mut self, f: GraphFamily) -> Self {
        self.family = f;
        self
    }

    /// Set the task budget.
    pub fn tasks(mut self, n: u64) -> Self {
        self.tasks = n;
        self
    }

    /// Set busy-work iterations per task.
    pub fn grain_iters(mut self, n: u64) -> Self {
        self.grain_iters = n;
        self
    }

    /// Set the per-edge payload.
    pub fn payload_bytes(mut self, n: u32) -> Self {
        self.payload_bytes = n;
        self
    }

    /// Set the graph seed.
    pub fn seed(mut self, s: u64) -> Self {
        self.seed = s;
        self
    }

    /// Attach a deadline.
    pub fn deadline(mut self, d: Duration) -> Self {
        self.deadline = Some(d);
        self
    }

    /// Make the body panic (storm fault windows).
    pub fn faulty(mut self, yes: bool) -> Self {
        self.faulty = yes;
        self
    }

    /// Park the body on the worker latch (chaos-test pinning).
    pub fn park(mut self, yes: bool) -> Self {
        self.park = yes;
        self
    }
}

/// The gateway's job-ledger counters, registered under
/// `/fleet{locality#N/total}/…` on the gateway's runtime registry.
/// Conservation at quiescence:
/// `submitted == completed + failed + timed-out + cancelled + rejected + shed`,
/// and every re-dispatch is accounted to exactly one cause
/// (`orphaned`, `handed-back`, `hedged`, `retried`).
pub struct FleetCounters {
    /// Jobs accepted by [`FleetGateway::submit`].
    pub submitted: Arc<RawCounter>,
    /// Terminal: completed.
    pub completed: Arc<RawCounter>,
    /// Terminal: failed (worker-side fault).
    pub failed: Arc<RawCounter>,
    /// Terminal: worker-side deadline expiry.
    pub timed_out: Arc<RawCounter>,
    /// Terminal: cancelled.
    pub cancelled: Arc<RawCounter>,
    /// Terminal: refused (worker admission, or dispatch budget spent).
    pub rejected: Arc<RawCounter>,
    /// Terminal: shed by the gateway (quorum degradation).
    pub shed: Arc<RawCounter>,
    /// `fleet/submit` calls sent (first dispatches and re-dispatches).
    pub dispatches: Arc<RawCounter>,
    /// Dispatches beyond a job's first.
    pub redispatches: Arc<RawCounter>,
    /// Leases lost to worker death.
    pub orphaned: Arc<RawCounter>,
    /// Keys handed back by drains.
    pub handed_back: Arc<RawCounter>,
    /// Leases re-dispatched by the hedge timer.
    pub hedged: Arc<RawCounter>,
    /// Dispatches refused by a worker (ack verdict) and re-queued.
    pub worker_rejects: Arc<RawCounter>,
    /// Dispatches whose ack failed in transit (disconnect/timeout).
    pub dispatch_failures: Arc<RawCounter>,
    /// Completion pushes accepted (fresh epoch, first for the job).
    pub completions: Arc<RawCounter>,
    /// Completion pushes fenced by epoch.
    pub fenced: Arc<RawCounter>,
    /// Completion pushes for already-terminal jobs.
    pub duplicates: Arc<RawCounter>,
}

impl FleetCounters {
    fn new() -> Self {
        Self {
            submitted: Arc::new(RawCounter::new()),
            completed: Arc::new(RawCounter::new()),
            failed: Arc::new(RawCounter::new()),
            timed_out: Arc::new(RawCounter::new()),
            cancelled: Arc::new(RawCounter::new()),
            rejected: Arc::new(RawCounter::new()),
            shed: Arc::new(RawCounter::new()),
            dispatches: Arc::new(RawCounter::new()),
            redispatches: Arc::new(RawCounter::new()),
            orphaned: Arc::new(RawCounter::new()),
            handed_back: Arc::new(RawCounter::new()),
            hedged: Arc::new(RawCounter::new()),
            worker_rejects: Arc::new(RawCounter::new()),
            dispatch_failures: Arc::new(RawCounter::new()),
            completions: Arc::new(RawCounter::new()),
            fenced: Arc::new(RawCounter::new()),
            duplicates: Arc::new(RawCounter::new()),
        }
    }

    fn register(&self, registry: &Registry, locality: usize) -> Result<(), RegistryError> {
        let t = format!("locality#{locality}/total");
        let reg = |name: &str, c: &Arc<RawCounter>| {
            registry.register(
                &format!("/fleet{{{t}}}/{name}"),
                RawView::new(Arc::clone(c), Unit::Count),
            )
        };
        reg("jobs/submitted", &self.submitted)?;
        reg("jobs/completed", &self.completed)?;
        reg("jobs/failed", &self.failed)?;
        reg("jobs/timed-out", &self.timed_out)?;
        reg("jobs/cancelled", &self.cancelled)?;
        reg("jobs/rejected", &self.rejected)?;
        reg("jobs/shed", &self.shed)?;
        reg("dispatch/sent", &self.dispatches)?;
        reg("dispatch/redispatched", &self.redispatches)?;
        reg("dispatch/orphaned", &self.orphaned)?;
        reg("dispatch/handed-back", &self.handed_back)?;
        reg("dispatch/hedged", &self.hedged)?;
        reg("dispatch/worker-rejects", &self.worker_rejects)?;
        reg("dispatch/failures", &self.dispatch_failures)?;
        reg("complete/accepted", &self.completions)?;
        reg("complete/fenced", &self.fenced)?;
        reg("complete/duplicate", &self.duplicates)?;
        Ok(())
    }
}

/// A point-in-time copy of the gateway ledger.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FleetLedger {
    /// Jobs accepted by `submit`.
    pub submitted: u64,
    /// Terminal buckets.
    pub completed: u64,
    /// Worker-side faults.
    pub failed: u64,
    /// Worker-side deadline expiries.
    pub timed_out: u64,
    /// Cancellations.
    pub cancelled: u64,
    /// Refusals.
    pub rejected: u64,
    /// Gateway quorum sheds.
    pub shed: u64,
    /// Dispatch attempts sent.
    pub dispatches: u64,
    /// Attempts beyond each job's first.
    pub redispatches: u64,
    /// Leases lost to death.
    pub orphaned: u64,
    /// Drain hand-backs.
    pub handed_back: u64,
    /// Hedge re-dispatches.
    pub hedged: u64,
    /// Worker refusals.
    pub worker_rejects: u64,
    /// Transit failures.
    pub dispatch_failures: u64,
    /// Accepted completion pushes.
    pub completions: u64,
    /// Epoch-fenced pushes.
    pub fenced: u64,
    /// Pushes for already-terminal jobs.
    pub duplicates: u64,
}

impl FleetLedger {
    /// Jobs in a terminal bucket.
    pub fn settled(&self) -> u64 {
        self.completed + self.failed + self.timed_out + self.cancelled + self.rejected + self.shed
    }

    /// The conservation identity: every submitted job is in exactly one
    /// terminal bucket.
    pub fn conserved(&self) -> bool {
        self.submitted == self.settled()
    }
}

enum Phase {
    Pending {
        /// Per-job backoff gate.
        not_before: Option<Instant>,
    },
    Dispatching {
        worker: usize,
        ack: SharedFuture<SubmitAck>,
        sent_at: Instant,
    },
    Leased {
        worker: usize,
        since: Instant,
    },
    Terminal,
}

struct Slot {
    outcome: Mutex<Option<JobOutcome>>,
    cv: Condvar,
}

struct GateJob {
    /// The wire job; `epoch` is the current fence.
    job: FleetJob,
    phase: Phase,
    dispatches: u32,
    submitted_at: Instant,
    /// Last worker refusal seen, surfaced if the job goes terminal
    /// rejected: `(origin locality, refusal)`.
    last_reject: Option<(u64, WireReject)>,
    slot: Arc<Slot>,
}

struct WorkerView {
    draining: bool,
    backoff_until: Option<Instant>,
    stats: Option<(Instant, WorkerStats)>,
    stats_poll: Option<SharedFuture<WorkerStats>>,
}

impl WorkerView {
    fn new() -> Self {
        Self {
            draining: false,
            backoff_until: None,
            stats: None,
            stats_poll: None,
        }
    }
}

struct GatewayShared {
    locality: Locality,
    config: FleetConfig,
    jobs: Mutex<HashMap<u64, GateJob>>,
    workers: Mutex<HashMap<usize, WorkerView>>,
    breakers: Mutex<LocalityBreakers>,
    counters: FleetCounters,
    next_key: AtomicU64,
    stop: AtomicBool,
}

/// Handle to a routed job; wait for its [`JobOutcome`].
#[derive(Clone)]
pub struct FleetJobHandle {
    key: u64,
    slot: Arc<Slot>,
}

impl FleetJobHandle {
    /// The job's idempotency key.
    pub fn key(&self) -> u64 {
        self.key
    }

    /// The outcome, if the job is terminal.
    pub fn outcome(&self) -> Option<JobOutcome> {
        self.slot.outcome.lock().clone()
    }

    /// Block until the job is terminal.
    pub fn wait(&self) -> JobOutcome {
        let mut guard = self.slot.outcome.lock();
        loop {
            if let Some(o) = guard.clone() {
                return o;
            }
            self.slot.cv.wait(&mut guard);
        }
    }

    /// Block up to `timeout`.
    pub fn wait_timeout(&self, timeout: Duration) -> Option<JobOutcome> {
        let deadline = Instant::now() + timeout;
        let mut guard = self.slot.outcome.lock();
        loop {
            if let Some(o) = guard.clone() {
                return Some(o);
            }
            let left = deadline.saturating_duration_since(Instant::now());
            if left.is_zero() {
                return None;
            }
            self.slot.cv.wait_for(&mut guard, left);
        }
    }
}

/// The gateway. One per serving plane; owns the pump thread.
pub struct FleetGateway {
    shared: Arc<GatewayShared>,
    pump: Option<std::thread::JoinHandle<()>>,
}

impl FleetGateway {
    /// Install a gateway on `locality`: registers `fleet/complete` and
    /// starts the pump.
    pub fn install(locality: &Locality, config: FleetConfig) -> Self {
        let shared = Arc::new(GatewayShared {
            locality: locality.clone(),
            breakers: Mutex::new(LocalityBreakers::new(config.breaker.clone())),
            config,
            jobs: Mutex::new(HashMap::new()),
            workers: Mutex::new(HashMap::new()),
            counters: FleetCounters::new(),
            next_key: AtomicU64::new(1),
            stop: AtomicBool::new(false),
        });
        shared
            .counters
            .register(locality.runtime().registry(), locality.id())
            .expect("fleet counter paths are unique per locality");
        {
            let w = Arc::downgrade(&shared);
            locality.register_action(ACTION_COMPLETE, move |outcome: FleetOutcome| {
                match w.upgrade() {
                    Some(shared) => handle_complete(&shared, outcome),
                    None => 1u8,
                }
            });
        }
        let pump = {
            let w = Arc::downgrade(&shared);
            let tick = shared.config.pump_interval;
            std::thread::Builder::new()
                .name(format!("grain-fleet-gateway-{}", locality.id()))
                .spawn(move || loop {
                    std::thread::sleep(tick);
                    let Some(shared) = w.upgrade() else { return };
                    if shared.stop.load(Ordering::SeqCst) {
                        return;
                    }
                    pump_tick(&shared);
                })
                .expect("failed to spawn fleet gateway pump")
        };
        Self {
            shared,
            pump: Some(pump),
        }
    }

    /// Accept a job into the fleet. Returns immediately; placement and
    /// failover happen on the pump. Under quorum degradation a
    /// deadline-carrying job is shed right here (shed-by-deadline
    /// rather than hang).
    pub fn submit(&self, spec: FleetJobSpec) -> FleetJobHandle {
        let shared = &self.shared;
        let key = shared.next_key.fetch_add(1, Ordering::Relaxed);
        shared.counters.submitted.incr();
        let slot = Arc::new(Slot {
            outcome: Mutex::new(None),
            cv: Condvar::new(),
        });
        let handle = FleetJobHandle {
            key,
            slot: Arc::clone(&slot),
        };
        let job = FleetJob {
            key,
            epoch: 0,
            name: spec.name,
            tenant: spec.tenant,
            family: family_code(spec.family),
            tasks: spec.tasks,
            grain_iters: spec.grain_iters,
            payload_bytes: spec.payload_bytes,
            seed: spec.seed,
            deadline_ms: spec.deadline.map_or(0, |d| d.as_millis() as u64),
            faulty: spec.faulty,
            park: spec.park,
        };
        let gj = GateJob {
            job,
            phase: Phase::Pending { not_before: None },
            dispatches: 0,
            submitted_at: Instant::now(),
            last_reject: None,
            slot,
        };
        let degraded = spec.deadline.is_some() && self.below_quorum();
        let mut jobs = shared.jobs.lock();
        jobs.insert(key, gj);
        if degraded {
            if let Some(gj) = jobs.get_mut(&key) {
                settle_shed(shared, gj);
            }
        }
        handle
    }

    /// Ask `worker` to drain: it stops accepting, cancels its queued
    /// fleet jobs, and hands their keys back; those jobs re-enter the
    /// pending set here (zero loss). Returns the handed-back keys.
    pub fn drain(&self, worker: usize) -> Result<Vec<u64>, TaskError> {
        let shared = &self.shared;
        let report: Arc<crate::wire::DrainReport> = shared
            .locality
            .async_remote(worker, ACTION_DRAIN, &())
            .wait()?;
        shared
            .workers
            .lock()
            .entry(worker)
            .or_insert_with(WorkerView::new)
            .draining = true;
        let mut jobs = shared.jobs.lock();
        for key in &report.handed_back {
            if let Some(gj) = jobs.get_mut(key) {
                if !matches!(gj.phase, Phase::Terminal) {
                    shared.counters.handed_back.incr();
                    gj.phase = Phase::Pending { not_before: None };
                }
            }
        }
        Ok(report.handed_back.clone())
    }

    /// The gateway's ledger, sampled now.
    pub fn ledger(&self) -> FleetLedger {
        let c = &self.shared.counters;
        FleetLedger {
            submitted: c.submitted.get(),
            completed: c.completed.get(),
            failed: c.failed.get(),
            timed_out: c.timed_out.get(),
            cancelled: c.cancelled.get(),
            rejected: c.rejected.get(),
            shed: c.shed.get(),
            dispatches: c.dispatches.get(),
            redispatches: c.redispatches.get(),
            orphaned: c.orphaned.get(),
            handed_back: c.handed_back.get(),
            hedged: c.hedged.get(),
            worker_rejects: c.worker_rejects.get(),
            dispatch_failures: c.dispatch_failures.get(),
            completions: c.completions.get(),
            fenced: c.fenced.get(),
            duplicates: c.duplicates.get(),
        }
    }

    /// Breaker state recorded for `worker` (present even after the
    /// worker died — the state is gateway-owned).
    pub fn breaker_state(&self, worker: usize) -> Option<FleetBreakerState> {
        self.shared.breakers.lock().state(worker)
    }

    /// How often `worker`'s breaker has opened.
    pub fn breaker_opens(&self, worker: usize) -> u64 {
        self.shared.breakers.lock().opens(worker)
    }

    /// Worker ids currently alive (linked) and not draining.
    pub fn accepting_workers(&self) -> Vec<usize> {
        let alive = self.shared.locality.connected_peers();
        let views = self.shared.workers.lock();
        self.shared
            .config
            .workers
            .iter()
            .copied()
            .filter(|w| alive.contains(w))
            .filter(|w| !views.get(w).is_some_and(|v| v.draining))
            .collect()
    }

    fn below_quorum(&self) -> bool {
        let need =
            (self.shared.config.quorum * self.shared.config.workers.len() as f64).ceil() as usize;
        self.accepting_workers().len() < need
    }

    /// The worker currently holding `key`'s lease, if the job is
    /// leased right now (chaos tests synchronize on this).
    pub fn lease_of(&self, key: u64) -> Option<usize> {
        match self.shared.jobs.lock().get(&key).map(|j| &j.phase) {
            Some(Phase::Leased { worker, .. }) => Some(*worker),
            _ => None,
        }
    }

    /// Human-readable eligibility view per worker — for harness hang
    /// diagnostics.
    pub fn debug_workers(&self) -> String {
        let now = Instant::now();
        let alive = self.shared.locality.connected_peers();
        let views = self.shared.workers.lock();
        let breakers = self.shared.breakers.lock();
        self.shared
            .config
            .workers
            .iter()
            .map(|w| {
                let v = views.get(w);
                format!(
                    "w{w}[alive={} draining={} backoff={} breaker={:?}]",
                    alive.contains(w),
                    v.is_some_and(|v| v.draining),
                    v.is_some_and(|v| v.backoff_until.is_some_and(|t| now < t)),
                    breakers.state(*w),
                )
            })
            .collect::<Vec<_>>()
            .join(" ")
    }

    /// Human-readable phase of one job — for harness hang diagnostics.
    pub fn debug_phase(&self, key: u64) -> String {
        match self.shared.jobs.lock().get(&key) {
            None => "unknown-key".to_owned(),
            Some(gj) => {
                let phase = match &gj.phase {
                    Phase::Pending { not_before } => {
                        format!("Pending{{backoff={}}}", not_before.is_some())
                    }
                    Phase::Dispatching { worker, .. } => format!("Dispatching{{worker={worker}}}"),
                    Phase::Leased { worker, .. } => format!("Leased{{worker={worker}}}"),
                    Phase::Terminal => "Terminal".to_owned(),
                };
                format!(
                    "{phase} epoch={} dispatches={}",
                    gj.job.epoch, gj.dispatches
                )
            }
        }
    }

    /// Jobs not yet terminal.
    pub fn in_flight(&self) -> usize {
        self.shared
            .jobs
            .lock()
            .values()
            .filter(|j| !matches!(j.phase, Phase::Terminal))
            .count()
    }

    /// The most recent stats sample polled from `worker`, if any.
    pub fn last_stats(&self, worker: usize) -> Option<WorkerStats> {
        self.shared
            .workers
            .lock()
            .get(&worker)
            .and_then(|v| v.stats.as_ref().map(|(_, s)| s.clone()))
    }
}

impl Drop for FleetGateway {
    fn drop(&mut self) {
        self.shared.stop.store(true, Ordering::SeqCst);
        if let Some(h) = self.pump.take() {
            let _ = h.join();
        }
    }
}

/// Terminal-bucket accounting + wakeup, shared by every settle path.
fn settle(shared: &GatewayShared, gj: &mut GateJob, outcome: JobOutcome) {
    if matches!(gj.phase, Phase::Terminal) {
        return;
    }
    gj.phase = Phase::Terminal;
    let c = &shared.counters;
    match outcome.state {
        JobState::Completed => c.completed.incr(),
        JobState::TimedOut => c.timed_out.incr(),
        JobState::Cancelled => c.cancelled.incr(),
        JobState::Rejected => match outcome.reject_reason {
            Some(RejectReason::Shed) | Some(RejectReason::FleetUnavailable { .. }) => c.shed.incr(),
            _ => c.rejected.incr(),
        },
        _ => c.failed.incr(),
    }
    *gj.slot.outcome.lock() = Some(outcome);
    gj.slot.cv.notify_all();
}

/// Shed a job with `FleetUnavailable` (quorum degradation).
fn settle_shed(shared: &GatewayShared, gj: &mut GateJob) {
    let outcome = JobOutcome {
        state: JobState::Rejected,
        tasks_completed: 0,
        tasks_skipped: 0,
        tasks_budget_skipped: 0,
        tasks_spawned: 0,
        tasks_faulted: 0,
        exec_ns: 0,
        turnaround: gj.submitted_at.elapsed(),
        fault: None,
        retries: 0,
        reject_reason: Some(RejectReason::FleetUnavailable {
            retry_after: shared.config.shed_retry_after,
        }),
        origin_locality: None,
    };
    settle(shared, gj, outcome);
}

/// A worker refused the job everywhere / the dispatch budget is spent:
/// surface the *originating* worker's refusal.
fn settle_rejected(shared: &GatewayShared, gj: &mut GateJob) {
    let (origin, reject) = gj
        .last_reject
        .unwrap_or((u64::MAX, WireReject::of(RejectReason::Shed)));
    let outcome = JobOutcome {
        state: JobState::Rejected,
        tasks_completed: 0,
        tasks_skipped: 0,
        tasks_budget_skipped: 0,
        tasks_spawned: 0,
        tasks_faulted: 0,
        exec_ns: 0,
        turnaround: gj.submitted_at.elapsed(),
        fault: None,
        retries: gj.dispatches.saturating_sub(1) as u64,
        reject_reason: Some(reject.reason()),
        origin_locality: (origin != u64::MAX).then_some(origin as usize),
    };
    settle(shared, gj, outcome);
}

/// `fleet/complete` handler: epoch-fenced, exactly-once accounting.
/// Returns 0 when the push was recorded, 1 when fenced or duplicate.
fn handle_complete(shared: &Arc<GatewayShared>, outcome: FleetOutcome) -> u8 {
    let mut jobs = shared.jobs.lock();
    let Some(gj) = jobs.get_mut(&outcome.key) else {
        shared.counters.duplicates.incr();
        return 1;
    };
    if matches!(gj.phase, Phase::Terminal) {
        shared.counters.duplicates.incr();
        return 1;
    }
    if outcome.epoch < gj.job.epoch {
        shared.counters.fenced.incr();
        return 1;
    }
    shared.counters.completions.incr();
    let origin = outcome.origin as usize;
    // A current-epoch completion is the strongest dispatch-success
    // evidence there is — and it can beat the submit ack home (the
    // worker runs the job before the gateway pump harvests the ack).
    // Without this, a half-open probe whose ack is outrun stays
    // half-open forever and wedges placement.
    shared.breakers.lock().record_success(origin);
    let fault = match (&outcome.state, &outcome.fault_msg) {
        (JobState::Failed, Some(msg)) | (JobState::TimedOut, Some(msg)) => {
            Some(TaskError::Remote {
                locality: origin,
                message: msg.clone(),
            })
        }
        _ => None,
    };
    let job_outcome = JobOutcome {
        state: outcome.state,
        tasks_completed: outcome.tasks_completed,
        tasks_skipped: 0,
        tasks_budget_skipped: 0,
        tasks_spawned: outcome.tasks_spawned,
        tasks_faulted: outcome.tasks_faulted,
        exec_ns: outcome.exec_ns,
        turnaround: gj.submitted_at.elapsed(),
        fault,
        retries: gj.dispatches.saturating_sub(1) as u64,
        reject_reason: outcome.reject.map(|r| r.reason()),
        origin_locality: Some(origin),
    };
    settle(shared, gj, job_outcome);
    0
}

/// Pick a worker for one dispatch. Deterministic given equal reports:
/// eligibility is (alive, not draining, breaker would-allow, backoff
/// passed); `Prefer` pins while eligible, otherwise least-loaded with
/// ties toward the lowest id.
fn place(
    shared: &GatewayShared,
    alive: &[usize],
    views: &HashMap<usize, WorkerView>,
    breakers: &LocalityBreakers,
    now: Instant,
) -> Option<usize> {
    let eligible: Vec<usize> = shared
        .config
        .workers
        .iter()
        .copied()
        .filter(|w| alive.contains(w))
        .filter(|w| {
            views
                .get(w)
                .is_none_or(|v| !v.draining && v.backoff_until.is_none_or(|t| now >= t))
        })
        .filter(|w| breakers.would_allow(*w, now))
        .collect();
    if eligible.is_empty() {
        return None;
    }
    if let Placement::Prefer(p) = shared.config.placement {
        if eligible.contains(&p) {
            return Some(p);
        }
    }
    let score = |w: usize| -> (u64, usize) {
        let s = views.get(&w).and_then(|v| v.stats.as_ref()).map(|(_, s)| s);
        let load = s.map_or(0, |s| {
            u64::from(s.pressure_level) * 1_000_000
                + (s.queue_fill * 10_000.0) as u64
                + s.queued_jobs * 100
                + (s.overhead * 100.0) as u64
                // A worker whose autotune tenants are still probing has
                // unsettled grain — its throughput is about to move.
                // Weight it like half a queued job so settled workers
                // win ties without probing ever gating placement.
                + u64::from(!s.autotune_converged) * 50
        });
        (load, w)
    };
    eligible.into_iter().min_by_key(|w| score(*w))
}

/// One pump tick: harvest stats polls, sweep acks/leases, place
/// pending jobs, shed under quorum loss.
fn pump_tick(shared: &Arc<GatewayShared>) {
    let now = Instant::now();
    let alive = shared.locality.connected_peers();

    // Refresh stats (poll harvest + re-poll stale entries).
    {
        let mut views = shared.workers.lock();
        for w in &shared.config.workers {
            let v = views.entry(*w).or_insert_with(WorkerView::new);
            if let Some(poll) = &v.stats_poll {
                match poll.try_get() {
                    None => {}
                    Some(Ok(stats)) => {
                        v.draining = stats.draining;
                        v.stats = Some((now, (*stats).clone()));
                        v.stats_poll = None;
                    }
                    Some(Err(_)) => v.stats_poll = None,
                }
            }
            let fresh = v
                .stats
                .as_ref()
                .is_some_and(|(t, _)| now.duration_since(*t) < shared.config.stats_max_age);
            if !fresh && v.stats_poll.is_none() && alive.contains(w) {
                v.stats_poll = Some(shared.locality.async_remote(*w, ACTION_STATS, &()));
            }
        }
    }

    let quorum_need = (shared.config.quorum * shared.config.workers.len() as f64).ceil() as usize;
    let accepting = {
        let views = shared.workers.lock();
        shared
            .config
            .workers
            .iter()
            .filter(|w| alive.contains(w))
            .filter(|w| !views.get(w).is_some_and(|v| v.draining))
            .count()
    };
    let degraded = accepting < quorum_need;

    let mut jobs = shared.jobs.lock();
    let mut keys: Vec<u64> = jobs.keys().copied().collect();
    keys.sort_unstable();
    for key in keys {
        let Some(gj) = jobs.get_mut(&key) else {
            continue;
        };
        match &gj.phase {
            Phase::Terminal => {}
            Phase::Leased { worker, since } => {
                let worker = *worker;
                if !alive.contains(&worker) {
                    // PR 7 liveness / kill sever: the lease is orphaned.
                    shared.counters.orphaned.incr();
                    gj.phase = Phase::Pending { not_before: None };
                } else if shared
                    .config
                    .lease_timeout
                    .is_some_and(|t| now.duration_since(*since) > t)
                {
                    // Hedge: re-dispatch elsewhere with a fresh epoch;
                    // the original, if it ever answers, is fenced.
                    shared.counters.hedged.incr();
                    gj.phase = Phase::Pending { not_before: None };
                }
            }
            Phase::Dispatching {
                worker,
                ack,
                sent_at,
            } => {
                let worker = *worker;
                match ack.try_get() {
                    None => {
                        if now.duration_since(*sent_at) > shared.config.ack_timeout {
                            shared.counters.dispatch_failures.incr();
                            shared.breakers.lock().record_failure(worker, now);
                            backoff_worker(shared, worker, now);
                            gj.phase = Phase::Pending {
                                not_before: Some(now + shared.config.retry_backoff),
                            };
                        }
                    }
                    Some(Ok(ack)) => match ack.verdict {
                        SubmitVerdict::Accepted | SubmitVerdict::AlreadyDone => {
                            shared.breakers.lock().record_success(worker);
                            gj.phase = Phase::Leased { worker, since: now };
                        }
                        SubmitVerdict::Fenced => {
                            // Our own stale attempt answered late; the
                            // job has moved on. The link answered, so
                            // release the breaker (a probe must not
                            // stay consumed), and re-place.
                            shared.breakers.lock().record_success(worker);
                            gj.phase = Phase::Pending { not_before: None };
                        }
                        SubmitVerdict::Draining => {
                            // A prompt refusal is still a healthy link:
                            // release the breaker; the draining flag
                            // excludes the worker from placement.
                            shared.breakers.lock().record_success(worker);
                            shared.counters.worker_rejects.incr();
                            shared
                                .workers
                                .lock()
                                .entry(worker)
                                .or_insert_with(WorkerView::new)
                                .draining = true;
                            gj.phase = Phase::Pending { not_before: None };
                        }
                        SubmitVerdict::Rejected => {
                            shared.counters.worker_rejects.incr();
                            shared.breakers.lock().record_failure(worker, now);
                            backoff_worker(shared, worker, now);
                            gj.last_reject = ack.reject.map(|r| (ack.origin, r));
                            if gj.dispatches >= shared.config.max_dispatches {
                                settle_rejected(shared, gj);
                            } else {
                                gj.phase = Phase::Pending {
                                    not_before: Some(now + shared.config.retry_backoff),
                                };
                            }
                        }
                    },
                    Some(Err(_)) => {
                        shared.counters.dispatch_failures.incr();
                        shared.breakers.lock().record_failure(worker, now);
                        backoff_worker(shared, worker, now);
                        gj.phase = Phase::Pending {
                            not_before: Some(now + shared.config.retry_backoff),
                        };
                    }
                }
            }
            Phase::Pending { not_before } => {
                // Quorum degradation pauses the whole pending set:
                // deadline-carrying jobs shed now (they cannot afford
                // to wait), deadline-less jobs hold until the fleet is
                // back above quorum.
                if degraded {
                    if gj.job.deadline_ms > 0 {
                        settle_shed(shared, gj);
                    }
                    continue;
                }
                if not_before.is_some_and(|t| now < t) {
                    continue;
                }
                if gj.dispatches >= shared.config.max_dispatches {
                    settle_rejected(shared, gj);
                    continue;
                }
                let chosen = {
                    let views = shared.workers.lock();
                    let breakers = shared.breakers.lock();
                    place(shared, &alive, &views, &breakers, now)
                };
                let Some(worker) = chosen else { continue };
                if !shared.breakers.lock().allow(worker, now) {
                    continue;
                }
                gj.job.epoch += 1;
                gj.dispatches += 1;
                shared.counters.dispatches.incr();
                if gj.dispatches > 1 {
                    shared.counters.redispatches.incr();
                }
                let ack: SharedFuture<SubmitAck> =
                    shared.locality.async_remote(worker, ACTION_SUBMIT, &gj.job);
                gj.phase = Phase::Dispatching {
                    worker,
                    ack,
                    sent_at: now,
                };
            }
        }
    }
}

fn backoff_worker(shared: &GatewayShared, worker: usize, now: Instant) {
    shared
        .workers
        .lock()
        .entry(worker)
        .or_insert_with(WorkerView::new)
        .backoff_until = Some(now + shared.config.retry_backoff);
}
