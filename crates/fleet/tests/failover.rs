//! Failover chaos tests: jobs survive locality death.
//!
//! Each test builds a 3-locality world — gateway on 0, fleet workers on
//! 1 and 2 — and drives one failure mode end to end against the
//! gateway's exactly-once ledger:
//!
//! * kill a worker mid-run → the lease is orphaned and re-dispatched
//!   exactly once, completing elsewhere;
//! * kill a worker *after* its job completed → a late duplicate push
//!   cannot double-count the completion;
//! * drain a loaded worker → queued jobs hand back with zero loss and
//!   finish on the survivor;
//! * Hold-partition the gateway from a worker, let the worker finish
//!   behind the cut, hedge the job elsewhere, then heal → the stale
//!   push is fenced by epoch, not double-counted.

use grain_fleet::wire::{FleetOutcome, ACTION_COMPLETE};
use grain_fleet::{
    FleetConfig, FleetGateway, FleetJobSpec, FleetWorker, FleetWorkerConfig, Placement,
};
use grain_net::bootstrap::Fabric;
use grain_net::locality::NetConfig;
use grain_runtime::RuntimeConfig;
use grain_service::JobState;
use grain_sim::{NetPlan, PartitionMode};
use std::time::{Duration, Instant};

const PATIENCE: Duration = Duration::from_secs(30);

fn eventually(cond: impl Fn() -> bool) -> bool {
    let deadline = Instant::now() + PATIENCE;
    while !cond() {
        if Instant::now() >= deadline {
            return false;
        }
        std::thread::sleep(Duration::from_millis(2));
    }
    true
}

fn loopback_world() -> Fabric {
    Fabric::loopback(3, |i| RuntimeConfig {
        workers: 1,
        locality_id: i,
        ..RuntimeConfig::default()
    })
}

#[test]
fn kill_during_run_redispatches_exactly_once() {
    let fabric = loopback_world();
    let w1 = FleetWorker::install(fabric.locality(1), FleetWorkerConfig::new(0, 1));
    let w2 = FleetWorker::install(fabric.locality(2), FleetWorkerConfig::new(0, 1));
    let mut cfg = FleetConfig::new(vec![1, 2]);
    cfg.placement = Placement::Prefer(1);
    let gateway = FleetGateway::install(fabric.locality(0), cfg);

    // A parked job: it reaches worker 1 and starts running, but holds
    // at the latch so the kill is guaranteed to land mid-run.
    let handle = gateway.submit(FleetJobSpec::new("victim", "tenant-a").tasks(4).park(true));
    let key = handle.key();
    assert!(
        eventually(|| gateway.lease_of(key) == Some(1)),
        "job never leased on worker 1"
    );
    assert!(
        eventually(|| w1.tracked_keys().contains(&key)),
        "worker 1 never tracked the job"
    );

    fabric.kill(1);

    // The orphaned lease re-dispatches; Prefer(1) is dead, so placement
    // falls through to worker 2, where the copy parks again.
    assert!(
        eventually(|| w2.tracked_keys().contains(&key)),
        "orphaned job never re-dispatched to worker 2"
    );
    w2.release_parked();
    let outcome = handle.wait_timeout(PATIENCE).expect("job settles");
    assert_eq!(outcome.state, JobState::Completed);
    assert_eq!(
        outcome.origin_locality,
        Some(2),
        "completion must name the locality that actually ran it"
    );

    let ledger = gateway.ledger();
    assert_eq!(ledger.completed, 1, "exactly one completion: {ledger:?}");
    assert_eq!(
        ledger.orphaned, 1,
        "the kill orphaned one lease: {ledger:?}"
    );
    assert_eq!(
        ledger.redispatches, 1,
        "orphan re-dispatched exactly once: {ledger:?}"
    );
    assert_eq!(ledger.dispatches, 2, "{ledger:?}");
    assert!(ledger.conserved(), "ledger leaked: {ledger:?}");

    drop(gateway);
    drop(w2);
    drop(w1);
    fabric.shutdown();
}

#[test]
fn kill_after_complete_does_not_double_count() {
    let fabric = loopback_world();
    let w1 = FleetWorker::install(fabric.locality(1), FleetWorkerConfig::new(0, 1));
    let w2 = FleetWorker::install(fabric.locality(2), FleetWorkerConfig::new(0, 1));
    let mut cfg = FleetConfig::new(vec![1, 2]);
    cfg.placement = Placement::Prefer(1);
    let gateway = FleetGateway::install(fabric.locality(0), cfg);

    let handle = gateway.submit(FleetJobSpec::new("done-then-die", "tenant-a").tasks(4));
    let key = handle.key();
    let outcome = handle.wait_timeout(PATIENCE).expect("job settles");
    assert_eq!(outcome.state, JobState::Completed);
    assert_eq!(outcome.origin_locality, Some(1));

    // The worker dies *after* the completion was recorded. Nothing is
    // orphaned — the job is already terminal.
    fabric.kill(1);
    std::thread::sleep(Duration::from_millis(20));
    let ledger = gateway.ledger();
    assert_eq!(ledger.completed, 1);
    assert_eq!(
        ledger.orphaned, 0,
        "terminal jobs are not orphaned: {ledger:?}"
    );
    assert_eq!(ledger.redispatches, 0, "{ledger:?}");

    // A replayed completion push for the settled job (the frame a dying
    // worker might have re-sent) is absorbed as a counted duplicate.
    let forged = FleetOutcome {
        key,
        epoch: 1,
        origin: 1,
        state: JobState::Completed,
        tasks_completed: 4,
        tasks_spawned: 4,
        tasks_faulted: 0,
        exec_ns: 1,
        retries: 0,
        fault_msg: None,
        reject: None,
    };
    let verdict = fabric
        .locality(2)
        .async_remote::<FleetOutcome, u8>(0, ACTION_COMPLETE, &forged)
        .wait()
        .expect("forged push settles");
    assert_eq!(*verdict, 1, "duplicate push must be refused");

    let ledger = gateway.ledger();
    assert_eq!(ledger.completed, 1, "no double count: {ledger:?}");
    assert_eq!(ledger.duplicates, 1, "{ledger:?}");
    assert!(ledger.conserved(), "ledger leaked: {ledger:?}");

    drop(gateway);
    drop(w2);
    drop(w1);
    fabric.shutdown();
}

#[test]
fn drain_hands_back_queued_jobs_with_zero_loss() {
    let fabric = loopback_world();
    // Worker 1 only has task budget for one 4-task job at a time, so
    // the follow-on jobs queue behind the parked one.
    let mut w1_cfg = FleetWorkerConfig::new(0, 1);
    w1_cfg.service.admission.max_in_flight_tasks = 4;
    let w1 = FleetWorker::install(fabric.locality(1), w1_cfg);
    let w2 = FleetWorker::install(fabric.locality(2), FleetWorkerConfig::new(0, 1));
    let mut cfg = FleetConfig::new(vec![1, 2]);
    cfg.placement = Placement::Prefer(1);
    let gateway = FleetGateway::install(fabric.locality(0), cfg);

    let blocker = gateway.submit(FleetJobSpec::new("blocker", "tenant-a").tasks(4).park(true));
    assert!(eventually(|| gateway.lease_of(blocker.key()) == Some(1)));
    let queued: Vec<_> = (0..2)
        .map(|i| gateway.submit(FleetJobSpec::new(format!("queued-{i}"), "tenant-a").tasks(4)))
        .collect();
    for h in &queued {
        assert!(
            eventually(|| gateway.lease_of(h.key()) == Some(1)),
            "queued job never leased on worker 1"
        );
    }

    let handed = gateway.drain(1).expect("drain settles");
    assert_eq!(handed.len(), 2, "both queued jobs hand back: {handed:?}");
    assert!(w1.draining());

    // Handed-back jobs re-dispatch to the survivor and complete there;
    // the running job finishes on the draining worker (drain is
    // graceful, not a kill).
    for h in &queued {
        let o = h.wait_timeout(PATIENCE).expect("handed-back job settles");
        assert_eq!(o.state, JobState::Completed, "zero loss across a drain");
        assert_eq!(o.origin_locality, Some(2));
    }
    w1.release_parked();
    let o = blocker.wait_timeout(PATIENCE).expect("running job settles");
    assert_eq!(o.state, JobState::Completed);
    assert_eq!(o.origin_locality, Some(1));

    let ledger = gateway.ledger();
    assert_eq!(ledger.completed, 3, "{ledger:?}");
    assert_eq!(ledger.handed_back, 2, "{ledger:?}");
    assert_eq!(ledger.redispatches, 2, "{ledger:?}");
    assert_eq!(ledger.orphaned, 0, "{ledger:?}");
    assert!(ledger.conserved(), "ledger leaked: {ledger:?}");

    drop(gateway);
    drop(w2);
    drop(w1);
    fabric.shutdown();
}

#[test]
fn partition_then_heal_fences_stale_epoch() {
    let fabric = Fabric::chaotic(
        3,
        NetPlan::clean(0xF1EE7).latency(1_000, 0),
        |_| NetConfig::default(),
        |i| RuntimeConfig {
            workers: 1,
            locality_id: i,
            ..RuntimeConfig::default()
        },
    );
    let w1 = FleetWorker::install(fabric.locality(1), FleetWorkerConfig::new(0, 1));
    let w2 = FleetWorker::install(fabric.locality(2), FleetWorkerConfig::new(0, 1));
    let mut cfg = FleetConfig::new(vec![1, 2]);
    cfg.placement = Placement::Prefer(1);
    // No liveness monitor runs here, so a Hold partition does not sever
    // links: death detection never fires and failover rides the hedge
    // timer + ack timeout + breaker instead.
    cfg.lease_timeout = Some(Duration::from_millis(200));
    cfg.ack_timeout = Duration::from_millis(100);
    cfg.retry_backoff = Duration::from_millis(10);
    cfg.breaker.failure_threshold = 1;
    cfg.breaker.cooldown = Duration::from_secs(60);
    let gateway = FleetGateway::install(fabric.locality(0), cfg);
    let net = fabric.net().expect("chaotic world");

    let handle = gateway.submit(FleetJobSpec::new("fenced", "tenant-a").tasks(4).park(true));
    let key = handle.key();
    assert!(eventually(|| gateway.lease_of(key) == Some(1)));
    assert!(eventually(|| w1.tracked_keys().contains(&key)));

    // Cut gateway↔worker-1 in Hold mode: frames park at the cut instead
    // of dying. The worker finishes behind the partition — its epoch-1
    // completion push is now parked in the cut.
    net.partition_now(0, 1, PartitionMode::Hold);
    w1.release_parked();

    // The hedge re-dispatches: first retry at worker 1 parks at the cut
    // and times out (tripping the breaker), then placement falls to
    // worker 2 under a fresh epoch.
    assert!(
        eventually(|| w2.tracked_keys().contains(&key)),
        "hedged job never reached worker 2"
    );
    assert!(eventually(|| gateway.lease_of(key) == Some(2)));

    // Heal while worker 2's copy is still parked: the stale epoch-1
    // push flushes out of the cut and must be *fenced*, because the
    // job's current epoch has moved past it.
    net.heal_now(0, 1);
    assert!(
        eventually(|| gateway.ledger().fenced >= 1),
        "stale-epoch push was not fenced: {:?}",
        gateway.ledger()
    );
    assert_eq!(
        gateway.ledger().completed,
        0,
        "fenced push must not settle the job"
    );

    w2.release_parked();
    let outcome = handle.wait_timeout(PATIENCE).expect("job settles");
    assert_eq!(outcome.state, JobState::Completed);
    assert_eq!(outcome.origin_locality, Some(2));

    let ledger = gateway.ledger();
    assert_eq!(ledger.completed, 1, "{ledger:?}");
    assert_eq!(
        ledger.completions, 1,
        "exactly one push accepted: {ledger:?}"
    );
    assert!(ledger.hedged >= 1, "{ledger:?}");
    assert!(ledger.fenced >= 1, "{ledger:?}");
    assert!(ledger.conserved(), "ledger leaked: {ledger:?}");
    assert!(gateway.breaker_opens(1) >= 1, "breaker must have tripped");

    drop(gateway);
    drop(w2);
    drop(w1);
    fabric.shutdown();
}
