//! # grain-stencil — the HPX-Stencil benchmark (1-D heat diffusion)
//!
//! Rust port of `1d_stencil_4` from the HPX distribution, the benchmark
//! the paper uses to control task granularity (§I-C): the heat equation
//! over a ring of `np · nx` grid points, partitioned so that each
//! (partition, time-step) pair is one task depending on the three closest
//! partitions of the previous step (Fig. 2).
//!
//! Three execution paths, all computing identical physics:
//!
//! * [`sequential::run_sequential`] — plain loops, the correctness oracle;
//! * [`futurized::run_futurized`] — dataflow tasks on the native
//!   [`grain_runtime::Runtime`], granularity controlled by `nx`;
//! * [`dag::stencil_workload`] — the same task DAG for the
//!   [`grain_sim`] discrete-event simulator, used to reproduce the
//!   paper's multi-core experiments on modeled Table I platforms;
//! * [`suspending::run_suspending`] — an alternative formulation with
//!   up-front task creation and suspension on unready inputs, exercising
//!   the runtime's suspended state and thread-phase counters.
//!
//! ```
//! use grain_runtime::Runtime;
//! use grain_stencil::{run_futurized, run_sequential, StencilParams};
//!
//! let params = StencilParams::new(16, 4, 8); // 4 partitions × 16 points
//! let rt = Runtime::with_workers(2);
//! assert_eq!(run_futurized(&rt, &params), run_sequential(&params));
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod dag;
pub mod distributed;
pub mod futurized;
pub mod heat;
pub mod params;
pub mod sequential;
pub mod suspending;

pub use dag::stencil_workload;
pub use distributed::{run_distributed_loopback, DistStencil};
pub use futurized::{
    collect_result, partition_grid, run_futurized, run_steps_from, spawn_stencil, step_partitions,
};
pub use heat::{heat, heat_part, initial_partition, total_heat, Partition};
pub use params::StencilParams;
pub use sequential::run_sequential;
pub use suspending::run_suspending;
