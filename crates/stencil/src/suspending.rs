//! A suspension-based formulation of the stencil.
//!
//! [`crate::futurized`] mirrors `1d_stencil_4`: tasks are *created by*
//! dataflow when their inputs are ready, so they run exactly one phase.
//! This module implements the other classic HPX formulation: every
//! (step, partition) task is created **up front** and *suspends* on its
//! unready inputs, exercising the runtime's suspended state and
//! thread-phase counters (`/threads/count/cumulative-phases`,
//! `/threads/time/average-phase`, …) exactly the way the paper's phase
//! counters were added to observe (§II-A: "the number of phases, phase
//! duration, and phase overhead can be useful to monitor the affects of
//! suspension").
//!
//! Both formulations compute bit-identical physics; they differ purely in
//! scheduling behaviour — tasks here go *pending → active → suspended →
//! pending → …* instead of being born ready.

use crate::heat::{heat_part, initial_partition, Partition};
use crate::params::StencilParams;
use grain_runtime::{channel, Poll, Priority, Runtime, SharedFuture, TaskError};
use std::sync::Arc;
use std::time::Duration;

/// Per-partition join timeout for the final blocking collect; see
/// `futurized::JOIN_TIMEOUT` for the rationale.
const JOIN_TIMEOUT: Duration = Duration::from_secs(60);

/// Run the stencil with up-front task creation and suspension on unready
/// dependencies. Returns the flattened final grid.
pub fn run_suspending(rt: &Runtime, params: &StencilParams) -> Vec<f64> {
    params.validate().expect("invalid stencil parameters");
    let np = params.np;
    let nt = params.nt;
    let coeff = params.coefficient();

    // One future per (step, partition); step 0 is the initial condition.
    let mut futures: Vec<Vec<SharedFuture<Partition>>> = Vec::with_capacity(nt + 1);
    futures.push(
        (0..np)
            .map(|i| SharedFuture::ready(initial_partition(i, params.nx)))
            .collect(),
    );
    let mut promises = Vec::with_capacity(nt);
    for _ in 0..nt {
        let (ps, fs): (Vec<_>, Vec<_>) = (0..np).map(|_| channel()).unzip();
        promises.push(ps);
        futures.push(fs);
    }

    // Spawn every task up front. Each suspends until its three inputs are
    // ready, then computes and fulfills its promise.
    for (t, step_promises) in promises.into_iter().enumerate() {
        for (i, promise) in step_promises.into_iter().enumerate() {
            let left = futures[t][(i + np - 1) % np].clone();
            let mid = futures[t][i].clone();
            let right = futures[t][(i + 1) % np].clone();
            let mut promise = Some(promise);
            rt.spawn_phased(Priority::Normal, move |ctx| {
                // Suspend on the first unsettled input; re-check on resume.
                for dep in [&left, &mid, &right] {
                    if !dep.is_ready() {
                        ctx.suspend_until(dep);
                        return Poll::Suspend;
                    }
                }
                // All three inputs are settled; a faulted input faults
                // this partition too, carrying the cause chain forward.
                let joined: Result<Vec<Arc<Partition>>, TaskError> = [&left, &mid, &right]
                    .into_iter()
                    .map(|d| d.try_get().expect("checked settled above"))
                    .collect();
                let promise = promise.take().expect("task completed twice");
                match joined {
                    Ok(v) => promise.set(heat_part(coeff, &v[0], &v[1], &v[2])),
                    Err(e) => promise.fail(TaskError::Dependency { cause: Arc::new(e) }),
                }
                Poll::Complete
            });
        }
    }

    let mut grid = Vec::with_capacity(np * params.nx);
    for f in &futures[nt] {
        let part = f
            .wait_timeout(JOIN_TIMEOUT)
            .unwrap_or_else(|e| panic!("suspending stencil partition failed: {e}"));
        grid.extend_from_slice(&part);
    }
    rt.wait_idle();
    grid
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sequential::run_sequential;

    fn rt(workers: usize) -> Runtime {
        Runtime::with_workers(workers)
    }

    #[test]
    fn matches_sequential() {
        let params = StencilParams::new(8, 6, 10);
        assert_eq!(run_suspending(&rt(3), &params), run_sequential(&params));
    }

    #[test]
    fn matches_futurized_formulation() {
        let params = StencilParams::new(16, 9, 7);
        let a = run_suspending(&rt(2), &params);
        let b = crate::futurized::run_futurized(&rt(2), &params);
        assert_eq!(a, b, "both formulations must agree bit-for-bit");
    }

    #[test]
    fn suspension_creates_extra_phases() {
        let params = StencilParams::new(32, 8, 6);
        let r = rt(2);
        let _ = run_suspending(&r, &params);
        let c = r.counters();
        assert_eq!(c.tasks.sum() as usize, params.total_tasks());
        // Step-0 tasks find their inputs ready, but later steps usually
        // suspend at least once; phases must exceed tasks overall.
        assert!(
            c.phases.sum() > c.tasks.sum(),
            "expected suspension phases: phases={} tasks={}",
            c.phases.sum(),
            c.tasks.sum()
        );
    }

    #[test]
    fn zero_steps_returns_initial_condition() {
        let params = StencilParams::new(4, 3, 0);
        let grid = run_suspending(&rt(1), &params);
        assert_eq!(grid, vec![0., 0., 0., 0., 1., 1., 1., 1., 2., 2., 2., 2.]);
    }

    #[test]
    fn single_worker_cannot_deadlock() {
        // All tasks queued up front on one worker: suspension must keep
        // the worker free to run whatever is ready, in any order.
        let params = StencilParams::new(8, 5, 8);
        assert_eq!(run_suspending(&rt(1), &params), run_sequential(&params));
    }
}
