//! Stencil task-DAG generator for the simulator.
//!
//! Produces the exact dependency structure the futurized benchmark
//! executes natively — `np` partitions × `nt` steps, each task depending
//! on the three closest partitions of the previous step — as a
//! [`SimWorkload`] the discrete-event engine can run on any modeled
//! platform.

use crate::params::StencilParams;
use grain_sim::{SimTaskSpec, SimWorkload};

/// Build the simulated stencil DAG.
///
/// Task indexing: step `t ∈ 0..nt`, partition `i ∈ 0..np` maps to index
/// `t·np + i`. Step-0 tasks have no dependencies (their inputs are the
/// ready initial partitions, exactly like the `make_ready_future`s of the
/// native version).
pub fn stencil_workload(params: &StencilParams) -> SimWorkload {
    params.validate().expect("invalid stencil parameters");
    let np = params.np;
    let nt = params.nt;
    let mut tasks = Vec::with_capacity(np * nt);
    for t in 0..nt {
        for i in 0..np {
            let deps = if t == 0 {
                Vec::new()
            } else {
                let base = (t - 1) * np;
                vec![
                    (base + (i + np - 1) % np) as u32,
                    (base + i) as u32,
                    (base + (i + 1) % np) as u32,
                ]
            };
            tasks.push(SimTaskSpec {
                points: params.nx as u64,
                deps,
            });
        }
    }
    SimWorkload {
        tasks,
        // Concurrent working set: one step's grid read + the next written,
        // matching the PerfParams::bytes_per_point accounting (16 B/pt).
        footprint_bytes: (params.total_points() as f64) * 16.0,
    }
}

/// Task index of (step, partition) in the generated workload.
pub fn task_index(params: &StencilParams, step: usize, partition: usize) -> usize {
    debug_assert!(step < params.nt && partition < params.np);
    step * params.np + partition
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_matches_parameters() {
        let p = StencilParams::new(1_000, 10, 5);
        let wl = stencil_workload(&p);
        assert_eq!(wl.len(), 50);
        assert_eq!(wl.total_points(), 50_000);
        wl.validate().unwrap();
    }

    #[test]
    fn step0_has_no_dependencies() {
        let p = StencilParams::new(10, 4, 3);
        let wl = stencil_workload(&p);
        for i in 0..4 {
            assert!(wl.tasks[i].deps.is_empty());
        }
    }

    #[test]
    fn later_steps_depend_on_three_neighbours() {
        let p = StencilParams::new(10, 5, 3);
        let wl = stencil_workload(&p);
        // Step 2, partition 0 depends on step-1 partitions 4, 0, 1.
        let idx = task_index(&p, 2, 0);
        assert_eq!(wl.tasks[idx].deps, vec![(5 + 4) as u32, 5, 6]);
        // Interior partition 2 depends on 1, 2, 3 of the previous step.
        let idx = task_index(&p, 1, 2);
        assert_eq!(wl.tasks[idx].deps, vec![1, 2, 3]);
    }

    #[test]
    fn ring_wraps_at_both_ends() {
        let p = StencilParams::new(10, 6, 2);
        let wl = stencil_workload(&p);
        let last = task_index(&p, 1, 5);
        assert_eq!(wl.tasks[last].deps, vec![4, 5, 0]);
    }

    #[test]
    fn single_partition_depends_on_itself_three_times() {
        let p = StencilParams::new(10, 1, 2);
        let wl = stencil_workload(&p);
        assert_eq!(wl.tasks[1].deps, vec![0, 0, 0]);
        wl.validate().unwrap();
    }

    #[test]
    fn footprint_covers_the_grid() {
        let p = StencilParams::new(1_000, 100, 2);
        let wl = stencil_workload(&p);
        assert_eq!(wl.footprint_bytes, 100_000.0 * 16.0);
    }

    #[test]
    fn simulates_end_to_end() {
        use grain_sim::{simulate, SimConfig};
        use grain_topology::presets;
        let p = StencilParams::new(5_000, 20, 10);
        let wl = stencil_workload(&p);
        let r = simulate(&presets::haswell(), 4, &wl, &SimConfig::default());
        assert_eq!(r.tasks as usize, p.total_tasks());
        assert!(r.wall_ns > 0.0);
    }

    #[test]
    fn dependency_chain_serializes_single_partition_runs() {
        use grain_sim::{simulate, SimConfig};
        use grain_topology::presets;
        // One partition: nt sequential tasks; more workers cannot help.
        let p = StencilParams::new(100_000, 1, 20);
        let wl = stencil_workload(&p);
        let one = simulate(&presets::haswell(), 1, &wl, &SimConfig::default());
        let many = simulate(&presets::haswell(), 8, &wl, &SimConfig::default());
        assert!(many.wall_ns > 0.6 * one.wall_ns);
    }
}
