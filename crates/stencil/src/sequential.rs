//! Sequential reference solver: the same physics with no tasking at all.
//! Used as the correctness oracle for the futurized version and as the
//! "plain loop" baseline in the examples.

use crate::heat::heat;
use crate::params::StencilParams;

/// Solve the heat equation sequentially over the flattened ring and
/// return the final grid (length `np · nx`).
pub fn run_sequential(params: &StencilParams) -> Vec<f64> {
    params.validate().expect("invalid stencil parameters");
    let n = params.total_points();
    let coeff = params.coefficient();

    // Initial condition: partition i uniformly at temperature i.
    let mut current: Vec<f64> = (0..n).map(|g| (g / params.nx) as f64).collect();
    let mut next = vec![0.0f64; n];

    for _ in 0..params.nt {
        for i in 0..n {
            let left = current[(i + n - 1) % n];
            let right = current[(i + 1) % n];
            next[i] = heat(coeff, left, current[i], right);
        }
        std::mem::swap(&mut current, &mut next);
    }
    current
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::heat::total_heat;

    #[test]
    fn zero_steps_returns_initial_condition() {
        let p = StencilParams::new(3, 4, 0);
        let grid = run_sequential(&p);
        assert_eq!(grid, vec![0., 0., 0., 1., 1., 1., 2., 2., 2., 3., 3., 3.]);
    }

    #[test]
    fn uniform_grid_is_a_fixed_point() {
        let mut p = StencilParams::new(5, 1, 10);
        p.np = 1; // single partition → all points start at 0.
        let grid = run_sequential(&p);
        assert!(grid.iter().all(|&v| v == 0.0));
    }

    #[test]
    fn heat_is_conserved() {
        let p = StencilParams::new(16, 8, 25);
        let before: f64 = (0..p.total_points()).map(|g| (g / p.nx) as f64).sum();
        let grid = run_sequential(&p);
        let after = total_heat([&grid[..]]);
        assert!(
            (before - after).abs() < 1e-6 * before.abs().max(1.0),
            "heat not conserved: {before} → {after}"
        );
    }

    #[test]
    fn diffusion_smooths_the_profile() {
        let p = StencilParams::new(10, 4, 40);
        let grid = run_sequential(&p);
        let min = grid.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = grid.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        // Initial range is [0, 3]; diffusion must shrink it strictly.
        assert!(min > 0.0);
        assert!(max < 3.0);
    }

    #[test]
    fn converges_to_the_mean() {
        let p = StencilParams::new(4, 4, 4000);
        let grid = run_sequential(&p);
        let mean = 1.5; // partitions 0..4 → mean of {0,1,2,3}
        for v in grid {
            assert!((v - mean).abs() < 1e-6, "not converged: {v}");
        }
    }
}
