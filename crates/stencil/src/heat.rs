//! The heat kernel and partition type.
//!
//! The update is the explicit three-point scheme of HPX's `1d_stencil`
//! family:
//!
//! ```text
//! u'[i] = u[i] + k·dt/dx² · (u[i−1] − 2·u[i] + u[i+1])
//! ```
//!
//! over a *ring* of points (the last point neighbours the first). With
//! partitioning, a partition's edge updates read the last element of the
//! left neighbour and the first element of the right neighbour — the data
//! dependency captured by Fig. 2 of the paper.

/// One partition's worth of temperatures. Partitions are immutable once
/// produced (each time step makes new ones), so they are shared through
/// `Arc` by the futures layer.
pub type Partition = Box<[f64]>;

/// Initial condition of `1d_stencil_4`: partition `i` starts uniformly at
/// temperature `i`.
pub fn initial_partition(index: usize, nx: usize) -> Partition {
    vec![index as f64; nx].into_boxed_slice()
}

/// The point update.
#[inline]
pub fn heat(coeff: f64, left: f64, middle: f64, right: f64) -> f64 {
    middle + coeff * (left - 2.0 * middle + right)
}

/// Compute one partition's next time step from itself and its two
/// neighbours (`left` is the partition to the left on the ring, etc.).
/// This is the body of every task in the benchmark.
pub fn heat_part(coeff: f64, left: &[f64], middle: &[f64], right: &[f64]) -> Partition {
    let nx = middle.len();
    assert!(nx > 0, "empty partition");
    assert!(!left.is_empty() && !right.is_empty(), "empty neighbour");
    let mut next = Vec::with_capacity(nx);
    if nx == 1 {
        next.push(heat(coeff, left[left.len() - 1], middle[0], right[0]));
    } else {
        next.push(heat(coeff, left[left.len() - 1], middle[0], middle[1]));
        for j in 1..nx - 1 {
            next.push(heat(coeff, middle[j - 1], middle[j], middle[j + 1]));
        }
        next.push(heat(coeff, middle[nx - 2], middle[nx - 1], right[0]));
    }
    next.into_boxed_slice()
}

/// Total heat (sum of temperatures). The ring scheme conserves this
/// exactly (up to floating-point), which validation and property tests
/// exploit.
pub fn total_heat<'a>(partitions: impl IntoIterator<Item = &'a [f64]>) -> f64 {
    partitions.into_iter().flat_map(|p| p.iter()).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn initial_partition_is_uniform_index() {
        let p = initial_partition(3, 5);
        assert_eq!(&*p, &[3.0; 5]);
    }

    #[test]
    fn heat_at_equilibrium_is_identity() {
        assert_eq!(heat(0.5, 7.0, 7.0, 7.0), 7.0);
    }

    #[test]
    fn heat_moves_toward_neighbours() {
        // Cold point between hot neighbours warms up.
        let v = heat(0.25, 10.0, 0.0, 10.0);
        assert!(v > 0.0);
        // Hot point between cold neighbours cools down.
        let v = heat(0.25, 0.0, 10.0, 0.0);
        assert!(v < 10.0);
    }

    #[test]
    fn heat_part_interior_matches_pointwise() {
        let coeff = 0.5;
        let m = [1.0, 2.0, 4.0, 8.0];
        let l = [0.5];
        let r = [16.0];
        let out = heat_part(coeff, &l, &m, &r);
        assert_eq!(out.len(), 4);
        assert_eq!(out[1], heat(coeff, m[0], m[1], m[2]));
        assert_eq!(out[2], heat(coeff, m[1], m[2], m[3]));
        // Edges read the neighbours.
        assert_eq!(out[0], heat(coeff, 0.5, m[0], m[1]));
        assert_eq!(out[3], heat(coeff, m[2], m[3], 16.0));
    }

    #[test]
    fn heat_part_single_point_partition() {
        let out = heat_part(0.5, &[1.0, 2.0], &[5.0], &[3.0]);
        // left neighbour element is the *last* of the left partition.
        assert_eq!(out[0], heat(0.5, 2.0, 5.0, 3.0));
    }

    #[test]
    fn total_heat_sums_across_partitions() {
        let a = [1.0, 2.0];
        let b = [3.0];
        assert_eq!(total_heat([&a[..], &b[..]]), 6.0);
    }

    #[test]
    #[should_panic(expected = "empty partition")]
    fn empty_partition_rejected() {
        heat_part(0.5, &[1.0], &[], &[1.0]);
    }
}
