//! The futurized benchmark on the native runtime — the Rust port of
//! HPX's `1d_stencil_4`.
//!
//! Each partition of each time step is one `dataflow` task depending on
//! the three closest partitions of the previous step (Fig. 2 of the
//! paper). The dependency tree mirrors the data dependencies of the
//! original algorithm; the runtime's scheduler discovers the available
//! parallelism ("a solid base for a highly efficient
//! auto-parallelization", §I-C).

use crate::heat::{heat_part, initial_partition, Partition};
use crate::params::StencilParams;
use grain_runtime::{Runtime, SharedFuture, TaskError};
use std::sync::Arc;
use std::time::Duration;

/// How long [`collect_result`] waits on any single partition before
/// declaring the run stuck. Generous — a healthy stencil step is
/// microseconds — so it only fires on a genuine hang (lost worker,
/// dependency cycle), turning a silent deadlock into a diagnosable
/// error.
const JOIN_TIMEOUT: Duration = Duration::from_secs(60);

/// Advance a ring of partition futures by one time step: one `dataflow`
/// task per partition, depending on the three closest partitions (the
/// edges of Fig. 2). Partitions may have unequal lengths — only the edge
/// elements of the neighbours are read — which is what allows online
/// re-partitioning between epochs.
pub fn step_partitions(
    rt: &Runtime,
    current: &[SharedFuture<Partition>],
    coeff: f64,
) -> Vec<SharedFuture<Partition>> {
    let np = current.len();
    let mut next = Vec::with_capacity(np);
    for i in 0..np {
        let deps = [
            current[(i + np - 1) % np].clone(),
            current[i].clone(),
            current[(i + 1) % np].clone(),
        ];
        next.push(rt.dataflow(&deps, move |_ctx, vals: Vec<Arc<Partition>>| {
            heat_part(coeff, &vals[0], &vals[1], &vals[2])
        }));
    }
    next
}

/// Run `steps` time steps from explicit initial partition data.
pub fn run_steps_from(
    rt: &Runtime,
    initial: Vec<Partition>,
    steps: usize,
    coeff: f64,
) -> Vec<SharedFuture<Partition>> {
    let mut current: Vec<SharedFuture<Partition>> =
        initial.into_iter().map(SharedFuture::ready).collect();
    for _ in 0..steps {
        current = step_partitions(rt, &current, coeff);
    }
    current
}

/// Split a flat grid into contiguous partitions of `nx` points (the last
/// one may be shorter). The ring order is preserved.
pub fn partition_grid(grid: &[f64], nx: usize) -> Vec<Partition> {
    assert!(nx > 0, "partition size must be positive");
    grid.chunks(nx)
        .map(|c| c.to_vec().into_boxed_slice())
        .collect()
}

/// Run the futurized stencil and return the future of every final-step
/// partition. The caller decides whether to block (`collect_result`) or
/// keep composing.
pub fn spawn_stencil(rt: &Runtime, params: &StencilParams) -> Vec<SharedFuture<Partition>> {
    params.validate().expect("invalid stencil parameters");
    let initial: Vec<Partition> = (0..params.np)
        .map(|i| initial_partition(i, params.nx))
        .collect();
    run_steps_from(rt, initial, params.nt, params.coefficient())
}

/// Block until the stencil finishes and flatten the result into one grid
/// vector of length `np · nx`. Panics (with the task error) if a
/// partition faulted or failed to resolve within [`JOIN_TIMEOUT`].
pub fn collect_result(parts: &[SharedFuture<Partition>]) -> Vec<f64> {
    try_collect_result(parts).unwrap_or_else(|e| panic!("stencil partition failed: {e}"))
}

/// Fallible join: waits up to [`JOIN_TIMEOUT`] per partition and
/// surfaces a faulted or stuck partition as `Err` — the root cause of a
/// mid-DAG panic is reachable through [`TaskError::root_cause`] —
/// instead of blocking forever.
pub fn try_collect_result(parts: &[SharedFuture<Partition>]) -> Result<Vec<f64>, TaskError> {
    // Settle every partition first, then flatten into one exactly-sized
    // allocation instead of growing the grid through doublings.
    let mut vals = Vec::with_capacity(parts.len());
    for f in parts {
        vals.push(f.wait_timeout(JOIN_TIMEOUT)?);
    }
    let mut grid = Vec::with_capacity(vals.iter().map(|p| p.len()).sum());
    for part in &vals {
        grid.extend_from_slice(part);
    }
    Ok(grid)
}

/// Convenience wrapper: run to completion and return the flattened grid.
pub fn run_futurized(rt: &Runtime, params: &StencilParams) -> Vec<f64> {
    let parts = spawn_stencil(rt, params);
    let grid = collect_result(&parts);
    rt.wait_idle();
    grid
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::heat::total_heat;
    use crate::sequential::run_sequential;
    use grain_runtime::RuntimeConfig;

    fn rt(workers: usize) -> Runtime {
        Runtime::new(RuntimeConfig::with_workers(workers))
    }

    #[test]
    fn matches_sequential_exactly() {
        let params = StencilParams::new(8, 6, 10);
        let seq = run_sequential(&params);
        let fut = run_futurized(&rt(3), &params);
        assert_eq!(
            seq, fut,
            "futurized result must be bit-identical to sequential"
        );
    }

    #[test]
    fn matches_sequential_across_shapes() {
        for (nx, np, nt) in [(1, 5, 8), (5, 1, 8), (3, 2, 1), (17, 13, 7), (2, 2, 0)] {
            let params = StencilParams::new(nx, np, nt);
            let seq = run_sequential(&params);
            let fut = run_futurized(&rt(2), &params);
            assert_eq!(seq, fut, "shape nx={nx} np={np} nt={nt}");
        }
    }

    #[test]
    fn task_count_matches_np_times_nt() {
        let params = StencilParams::new(4, 7, 5);
        let r = rt(2);
        let _ = run_futurized(&r, &params);
        assert_eq!(r.counters().tasks.sum() as usize, params.total_tasks());
    }

    #[test]
    fn heat_conserved_under_tasking() {
        let params = StencilParams::new(32, 8, 20);
        let grid = run_futurized(&rt(4), &params);
        let expect: f64 = (0..params.total_points())
            .map(|g| (g / params.nx) as f64)
            .sum();
        assert!((total_heat([&grid[..]]) - expect).abs() < 1e-6 * expect);
    }

    #[test]
    fn partition_grid_chunks_with_ragged_tail() {
        let grid: Vec<f64> = (0..10).map(|i| i as f64).collect();
        let parts = partition_grid(&grid, 4);
        assert_eq!(parts.len(), 3);
        assert_eq!(&*parts[0], &[0.0, 1.0, 2.0, 3.0]);
        assert_eq!(&*parts[2], &[8.0, 9.0]);
    }

    #[test]
    fn ragged_partitions_compute_the_same_physics() {
        // Split the same grid unevenly; the result must match the uniform
        // sequential oracle exactly (only neighbour edges are read).
        let params = StencilParams::new(6, 4, 9);
        let seq = run_sequential(&params);
        let grid: Vec<f64> = (0..params.total_points())
            .map(|g| (g / params.nx) as f64)
            .collect();
        let rt = rt(2);
        // 24 points into ragged chunks of 7.
        let parts = partition_grid(&grid, 7);
        let out = run_steps_from(&rt, parts, params.nt, params.coefficient());
        assert_eq!(collect_result(&out), seq);
    }

    #[test]
    fn repartitioning_between_epochs_preserves_physics() {
        let params = StencilParams::new(8, 8, 12);
        let seq = run_sequential(&params);
        let rt = rt(2);
        let grid: Vec<f64> = (0..params.total_points())
            .map(|g| (g / params.nx) as f64)
            .collect();
        // Epoch 1: 6 steps at nx=16; epoch 2: 6 steps at nx=5 (ragged).
        let mid = run_steps_from(&rt, partition_grid(&grid, 16), 6, params.coefficient());
        let mid_grid = collect_result(&mid);
        let out = run_steps_from(&rt, partition_grid(&mid_grid, 5), 6, params.coefficient());
        assert_eq!(collect_result(&out), seq);
    }

    #[test]
    fn counters_show_granularity_difference() {
        // Same total work, two granularities: the fine-grained run must
        // execute more tasks with a smaller average task duration.
        let coarse = StencilParams::new(10_000, 4, 4);
        let fine = StencilParams::new(100, 400, 4);
        let rc = rt(2);
        let _ = run_futurized(&rc, &coarse);
        let rf = rt(2);
        let _ = run_futurized(&rf, &fine);
        assert!(rf.counters().tasks.sum() > rc.counters().tasks.sum());
        assert!(
            rf.counters().task_duration_ns() < rc.counters().task_duration_ns(),
            "fine {} vs coarse {}",
            rf.counters().task_duration_ns(),
            rc.counters().task_duration_ns()
        );
    }
}
