//! The distributed stencil — the analog of HPX's `1d_stencil_8`.
//!
//! The partition ring is split into contiguous blocks, one block per
//! locality. Interior partitions depend on their neighbours exactly as
//! in [`crate::futurized`]; at block boundaries the neighbour lives on
//! another locality, so the dependency becomes a **remote edge fetch**:
//! a `stencil/edge` action invoked via `Locality::async_remote`.
//!
//! The exchange is *pull-based*: each locality publishes, per time step,
//! a future for the first element of its first partition and the last
//! element of its last partition (all [`heat_part`] ever reads from a
//! neighbour). A neighbour's request for an edge that is not computed
//! yet receives a deferred reply — sent when the producing task settles
//! — so requests and production may interleave in any order without
//! barriers. Because only edge *elements* cross the wire (as `f64` bit
//! patterns), and the dependency graph is otherwise identical to the
//! single-locality futurized run, the distributed result is
//! **bit-identical** to [`crate::futurized::run_futurized`].
//!
//! Failure semantics ride on the runtime's error chain: a dead peer
//! settles its in-flight edge fetches with `TaskError::Disconnected`,
//! which propagates through the dataflow graph into every dependent
//! partition, so [`DistStencil::local_result`] returns an error naming
//! the dead locality instead of hanging.

use crate::heat::{heat_part, initial_partition, Partition};
use crate::params::StencilParams;
use grain_net::bootstrap::Fabric;
use grain_net::locality::Locality;
use grain_runtime::grain_counters::sync::Mutex;
use grain_runtime::{channel, when_all, Promise, RuntimeConfig, SharedFuture, TaskError};
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Deadline for joining the local block (mirrors the futurized
/// `JOIN_TIMEOUT`): generous enough for any healthy run, so hitting it
/// means a genuine hang — which the error-settling design should have
/// prevented.
pub const JOIN_TIMEOUT: Duration = Duration::from_secs(60);

/// Edge selector: the first element of the locality's first partition
/// (a neighbour's *right* ghost).
const EDGE_FIRST: u8 = 0;
/// Edge selector: the last element of the locality's last partition
/// (a neighbour's *left* ghost).
const EDGE_LAST: u8 = 1;

/// Name of the deferred edge-fetch action.
const ACTION_EDGE: &str = "stencil/edge";
/// Name of the deferred block-gather action.
const ACTION_COLLECT: &str = "stencil/collect";

/// Contiguous block of the partition ring owned by locality `k` of
/// `world`: `(offset, count)` in global partition indices. Balanced to
/// within one partition.
pub fn block_of(k: usize, world: usize, np: usize) -> (usize, usize) {
    let base = np / world;
    let extra = np % world;
    let count = base + usize::from(k < extra);
    let offset = k * base + k.min(extra);
    (offset, count)
}

/// One edge slot: the future handed to remote requesters and (until the
/// producer links it) the promise that will settle it.
struct Slot {
    future: SharedFuture<f64>,
    promise: Option<Promise<f64>>,
}

/// Meeting point of edge producers and remote consumers, keyed by
/// `(step, EDGE_FIRST | EDGE_LAST)`. Either side may arrive first.
struct EdgeBoard {
    slots: Mutex<HashMap<(u64, u8), Slot>>,
}

impl EdgeBoard {
    fn new() -> Self {
        Self {
            slots: Mutex::new(HashMap::new()),
        }
    }

    fn with_slot<R>(&self, key: (u64, u8), f: impl FnOnce(&mut Slot) -> R) -> R {
        let mut slots = self.slots.lock();
        let slot = slots.entry(key).or_insert_with(|| {
            let (promise, future) = channel();
            Slot {
                future,
                promise: Some(promise),
            }
        });
        f(slot)
    }

    /// The future a remote requester waits on.
    fn future_of(&self, key: (u64, u8)) -> SharedFuture<f64> {
        self.with_slot(key, |s| s.future.clone())
    }

    /// Link the slot to the partition future that produces it: when the
    /// partition settles, the edge element (or the error) follows.
    fn publish(&self, step: u64, which: u8, src: &SharedFuture<Partition>) {
        let promise = self.with_slot((step, which), |s| s.promise.take());
        if let Some(promise) = promise {
            src.on_settled(move |settled| match settled {
                Ok(part) => promise.set(if which == EDGE_FIRST {
                    part[0]
                } else {
                    part[part.len() - 1]
                }),
                Err(e) => promise.fail(e.clone()),
            });
        }
    }
}

/// State shared between the action handlers and the driving code.
struct StencilState {
    edges: EdgeBoard,
    /// Settled with this locality's flattened final block.
    result: SharedFuture<Vec<f64>>,
    result_promise: Mutex<Option<Promise<Vec<f64>>>>,
    started: AtomicBool,
}

/// A distributed stencil instance installed on one locality.
///
/// Protocol: [`DistStencil::install`] on **every** locality first (this
/// registers the actions peers will call), then [`DistStencil::start`]
/// everywhere, then [`DistStencil::local_result`] /
/// [`DistStencil::gather`].
pub struct DistStencil {
    loc: Locality,
    params: StencilParams,
    state: Arc<StencilState>,
}

impl DistStencil {
    /// Register this locality's stencil actions and prepare (but do not
    /// start) the computation.
    ///
    /// Panics if the parameters are invalid or there are fewer
    /// partitions than localities (every locality must own at least one
    /// partition for the ring exchange to close).
    pub fn install(loc: &Locality, params: StencilParams) -> Self {
        params.validate().expect("invalid stencil parameters");
        assert!(
            params.np >= loc.world(),
            "np ({}) must be >= world ({}): every locality needs a partition",
            params.np,
            loc.world()
        );
        let (result_promise, result) = channel();
        let state = Arc::new(StencilState {
            edges: EdgeBoard::new(),
            result,
            result_promise: Mutex::new(Some(result_promise)),
            started: AtomicBool::new(false),
        });
        {
            let state = Arc::clone(&state);
            loc.register_deferred_action(ACTION_EDGE, move |_rt, (step, which): (u64, u8)| {
                state.edges.future_of((step, which))
            });
        }
        {
            let state = Arc::clone(&state);
            loc.register_deferred_action(ACTION_COLLECT, move |_rt, (): ()| state.result.clone());
        }
        Self {
            loc: loc.clone(),
            params,
            state,
        }
    }

    /// Build this locality's entire dependency graph (all `nt` steps)
    /// and set it running. Remote edge fetches for every step are issued
    /// up front — the runtime's dataflow scheduling overlaps them with
    /// computation exactly as `1d_stencil_8` overlaps communication and
    /// computation.
    pub fn start(&self) {
        assert!(
            !self.state.started.swap(true, Ordering::SeqCst),
            "start() called twice"
        );
        let world = self.loc.world();
        let me = self.loc.id();
        let np = self.params.np;
        let coeff = self.params.coefficient();
        let (offset, count) = block_of(me, world, np);
        let rt = self.loc.runtime();

        let mut current: Vec<SharedFuture<Partition>> = (offset..offset + count)
            .map(|i| SharedFuture::ready(initial_partition(i, self.params.nx)))
            .collect();

        if world == 1 {
            // Whole ring is local: identical to the futurized run.
            for _ in 0..self.params.nt {
                current = crate::futurized::step_partitions(rt, &current, coeff);
            }
        } else {
            let left_peer = (me + world - 1) % world;
            let right_peer = (me + 1) % world;
            self.publish_edges(0, &current);
            for step in 0..self.params.nt as u64 {
                // The left neighbour's last element is our left ghost;
                // the right neighbour's first element is our right ghost.
                let left_ghost = ghost(self.loc.async_remote(
                    left_peer,
                    ACTION_EDGE,
                    &(step, EDGE_LAST),
                ));
                let right_ghost = ghost(self.loc.async_remote(
                    right_peer,
                    ACTION_EDGE,
                    &(step, EDGE_FIRST),
                ));
                let mut next = Vec::with_capacity(count);
                for j in 0..count {
                    let left = if j == 0 {
                        left_ghost.clone()
                    } else {
                        current[j - 1].clone()
                    };
                    let right = if j == count - 1 {
                        right_ghost.clone()
                    } else {
                        current[j + 1].clone()
                    };
                    let deps = [left, current[j].clone(), right];
                    next.push(rt.dataflow(&deps, move |_ctx, vals: Vec<Arc<Partition>>| {
                        heat_part(coeff, &vals[0], &vals[1], &vals[2])
                    }));
                }
                current = next;
                self.publish_edges(step + 1, &current);
            }
        }

        // Flatten the final block into the result future.
        let promise = self.state.result_promise.lock().take();
        if let Some(promise) = promise {
            when_all(&current).on_settled(move |settled| match settled {
                Ok(parts) => {
                    let total = parts.iter().map(|p| p.len()).sum();
                    let mut flat = Vec::with_capacity(total);
                    for p in parts.iter() {
                        flat.extend_from_slice(p);
                    }
                    promise.set(flat);
                }
                Err(e) => promise.fail(e.clone()),
            });
        }
    }

    fn publish_edges(&self, step: u64, current: &[SharedFuture<Partition>]) {
        self.state.edges.publish(step, EDGE_FIRST, &current[0]);
        self.state
            .edges
            .publish(step, EDGE_LAST, &current[current.len() - 1]);
    }

    /// The locality hosting this instance.
    pub fn locality(&self) -> &Locality {
        &self.loc
    }

    /// Global partition range `(offset, count)` owned by this locality.
    pub fn block(&self) -> (usize, usize) {
        block_of(self.loc.id(), self.loc.world(), self.params.np)
    }

    /// Wait for this locality's block of the final grid (flattened, in
    /// global order). A dead peer surfaces here as an `Err` whose cause
    /// chain names the lost locality — never as a hang beyond `timeout`.
    pub fn local_result_timeout(&self, timeout: Duration) -> Result<Vec<f64>, TaskError> {
        self.state
            .result
            .wait_timeout(timeout)
            .map(|v| v.as_ref().clone())
    }

    /// [`DistStencil::local_result_timeout`] with the default
    /// [`JOIN_TIMEOUT`].
    pub fn local_result(&self) -> Result<Vec<f64>, TaskError> {
        self.local_result_timeout(JOIN_TIMEOUT)
    }

    /// Collect the full final grid by fetching every locality's block
    /// (including our own, via the self-call fast path) and
    /// concatenating in locality order — which *is* global partition
    /// order, because blocks are contiguous and ascending.
    pub fn gather(&self) -> Result<Vec<f64>, TaskError> {
        let world = self.loc.world();
        let futures: Vec<SharedFuture<Vec<f64>>> = (0..world)
            .map(|k| self.loc.async_remote(k, ACTION_COLLECT, &()))
            .collect();
        let mut grid = Vec::with_capacity(self.params.total_points());
        for f in futures {
            grid.extend_from_slice(&f.wait_timeout(JOIN_TIMEOUT)?);
        }
        Ok(grid)
    }
}

/// Adapt a remote edge-element future into a single-element ghost
/// partition, which is all [`heat_part`] reads from a neighbour.
fn ghost(edge: SharedFuture<f64>) -> SharedFuture<Partition> {
    let (promise, future) = channel();
    edge.on_settled(move |settled| match settled {
        Ok(v) => promise.set(vec![**v].into_boxed_slice()),
        Err(e) => promise.fail(e.clone()),
    });
    future
}

/// Hermetic convenience runner: build a loopback world of `world`
/// localities (`workers_per` workers each), run the stencil across it,
/// gather on locality 0, shut the fabric down, and return the final
/// grid.
pub fn run_distributed_loopback(
    world: usize,
    workers_per: usize,
    params: &StencilParams,
) -> Vec<f64> {
    let fabric = Fabric::loopback(world, |_| RuntimeConfig::with_workers(workers_per));
    let instances: Vec<DistStencil> = (0..world)
        .map(|k| DistStencil::install(fabric.locality(k), *params))
        .collect();
    for inst in &instances {
        inst.start();
    }
    let grid = instances[0]
        .gather()
        .unwrap_or_else(|e| panic!("distributed stencil failed: {e}"));
    fabric.shutdown();
    grid
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn blocks_cover_the_ring_exactly_once() {
        for (world, np) in [(1, 1), (2, 5), (3, 7), (4, 4), (3, 100)] {
            let mut covered = Vec::new();
            for k in 0..world {
                let (ofs, cnt) = block_of(k, world, np);
                assert!(cnt >= 1, "world={world} np={np} k={k}");
                covered.extend(ofs..ofs + cnt);
            }
            assert_eq!(
                covered,
                (0..np).collect::<Vec<_>>(),
                "world={world} np={np}"
            );
        }
    }

    #[test]
    fn single_locality_world_matches_futurized() {
        let params = StencilParams::new(7, 5, 9);
        let rt = grain_runtime::Runtime::with_workers(2);
        let expect = crate::futurized::run_futurized(&rt, &params);
        let got = run_distributed_loopback(1, 2, &params);
        assert_eq!(got, expect);
    }
}
