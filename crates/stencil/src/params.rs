//! Stencil problem parameters.

/// Parameters of the 1-D heat-diffusion benchmark, matching the knobs of
/// HPX's `1d_stencil_4`: `np` partitions of `nx` grid points each, `nt`
/// time steps, and the physical constants `k` (heat transfer coefficient),
/// `dt` (time step) and `dx` (grid spacing).
///
/// The paper controls granularity by varying `nx` while holding
/// `np · nx = 100 000 000` constant (§II): partition size *is* task size.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StencilParams {
    /// Grid points per partition (the granularity knob).
    pub nx: usize,
    /// Number of partitions.
    pub np: usize,
    /// Time steps.
    pub nt: usize,
    /// Heat transfer coefficient.
    pub k: f64,
    /// Time step length.
    pub dt: f64,
    /// Grid spacing.
    pub dx: f64,
}

impl StencilParams {
    /// The HPX example's default physical constants with the given
    /// problem shape.
    pub fn new(nx: usize, np: usize, nt: usize) -> Self {
        Self {
            nx,
            np,
            nt,
            k: 0.5,
            dt: 1.0,
            dx: 1.0,
        }
    }

    /// The paper's configuration for a given partition size on the Xeon
    /// nodes: 100 M total points, 50 steps, `np = total / nx`.
    pub fn paper_xeon(nx: usize) -> Self {
        Self::for_total(100_000_000, nx, 50)
    }

    /// The paper's Xeon Phi configuration: 100 M total points, 5 steps.
    pub fn paper_phi(nx: usize) -> Self {
        Self::for_total(100_000_000, nx, 5)
    }

    /// `total / nx` partitions (rounded up so at least the requested
    /// total is covered; the paper adjusts `np` the same way to hold the
    /// grid size constant).
    pub fn for_total(total_points: usize, nx: usize, nt: usize) -> Self {
        assert!(nx > 0 && total_points > 0);
        let np = total_points.div_ceil(nx).max(1);
        Self::new(nx, np, nt)
    }

    /// Total grid points.
    pub fn total_points(&self) -> usize {
        self.nx * self.np
    }

    /// Total tasks the futurized run will execute (`np · nt`).
    pub fn total_tasks(&self) -> usize {
        self.np * self.nt
    }

    /// The update coefficient `k·dt/dx²` of the explicit scheme.
    pub fn coefficient(&self) -> f64 {
        self.k * self.dt / (self.dx * self.dx)
    }

    /// Stability bound of the explicit scheme: `k·dt/dx² ≤ 0.5`.
    pub fn is_stable(&self) -> bool {
        self.coefficient() <= 0.5
    }

    /// Sanity-check the shape.
    pub fn validate(&self) -> Result<(), String> {
        if self.nx == 0 {
            return Err("nx must be positive".into());
        }
        if self.np == 0 {
            return Err("np must be positive".into());
        }
        if !self.is_stable() {
            return Err(format!(
                "unstable explicit scheme: k*dt/dx^2 = {} > 0.5",
                self.coefficient()
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_hpx_example() {
        let p = StencilParams::new(1000, 100, 50);
        assert_eq!(p.k, 0.5);
        assert_eq!(p.dt, 1.0);
        assert_eq!(p.dx, 1.0);
        assert_eq!(p.coefficient(), 0.5);
        assert!(p.is_stable());
        p.validate().unwrap();
    }

    #[test]
    fn paper_configs() {
        let p = StencilParams::paper_xeon(12_500);
        assert_eq!(p.total_points(), 100_000_000);
        assert_eq!(p.np, 8_000);
        assert_eq!(p.nt, 50);
        let p = StencilParams::paper_phi(100_000);
        assert_eq!(p.nt, 5);
        assert_eq!(p.np, 1_000);
    }

    #[test]
    fn for_total_rounds_up() {
        let p = StencilParams::for_total(1000, 300, 1);
        assert_eq!(p.np, 4);
        assert!(p.total_points() >= 1000);
    }

    #[test]
    fn total_tasks_is_np_times_nt() {
        let p = StencilParams::new(100, 7, 3);
        assert_eq!(p.total_tasks(), 21);
    }

    #[test]
    fn unstable_scheme_rejected() {
        let mut p = StencilParams::new(10, 10, 1);
        p.dt = 3.0;
        assert!(!p.is_stable());
        assert!(p.validate().is_err());
    }

    #[test]
    fn zero_shape_rejected() {
        let p = StencilParams {
            nx: 0,
            ..StencilParams::new(1, 1, 1)
        };
        assert!(p.validate().is_err());
    }
}
