//! Cross-executor equivalence: one graph description, three execution
//! paths — single runtime, grain-service job, and a 2-locality grain-net
//! world with cross-partition edges traveling as parcels — must produce
//! the *same* checksum, equal to the sequential reference. This is the
//! contract that makes the recorded (graph × grain × comm) surface
//! comparable across executors.

use grain_runtime::Runtime;
use grain_service::{JobService, JobSpec};
use grain_taskbench::{
    all_kinds, run_distributed_loopback, run_local, run_service_job, GraphKind, GraphSpec,
};
use std::sync::Arc;

/// The satellite's pinned case: a seeded random DAG with per-edge
/// payload jitter, identical across all three executors.
#[test]
fn random_dag_checksum_is_identical_across_all_three_executors() {
    let graph = Arc::new(
        GraphSpec::shape(
            GraphKind::RandomDag {
                width: 6,
                steps: 7,
                max_deps: 3,
            },
            0xE9_01,
        )
        .grain(30)
        .payload(128)
        .build(),
    );
    let want = graph.checksum_reference();

    let rt = Runtime::with_workers(2);
    assert_eq!(run_local(&rt, &graph).expect("local"), want, "local");

    let service = JobService::with_workers(2);
    let via_job = run_service_job(&service, JobSpec::new("eq-dag", "test"), &graph)
        .expect("service job completes");
    assert_eq!(via_job, want, "service");

    let dist = run_distributed_loopback(2, 1, &graph).expect("distributed");
    assert_eq!(dist, want, "2-locality");
}

/// Every family agrees across executors, with the distributed world
/// sized so each graph actually splits across localities.
#[test]
fn every_family_agrees_across_executors() {
    let service = JobService::with_workers(2);
    let rt = Runtime::with_workers(2);
    for kind in all_kinds(36) {
        let graph = Arc::new(
            GraphSpec::shape(kind, 0xFA_77)
                .grain(15)
                .payload(48)
                .build(),
        );
        let want = graph.checksum_reference();
        let name = kind.name();

        assert_eq!(
            run_local(&rt, &graph).expect("local"),
            want,
            "{name}: local"
        );
        let via_job = run_service_job(&service, JobSpec::new(name, "test"), &graph)
            .expect("service job completes");
        assert_eq!(via_job, want, "{name}: service");
        let dist = run_distributed_loopback(2, 1, &graph).expect("distributed");
        assert_eq!(dist, want, "{name}: 2-locality");
    }
}

/// Seed sensitivity survives execution: two seeds give two different
/// checksums on every executor (so the equivalence tests above cannot
/// pass vacuously via a constant).
#[test]
fn different_seeds_give_different_checksums_on_every_executor() {
    let rt = Runtime::with_workers(2);
    let mk = |seed| {
        Arc::new(
            GraphSpec::shape(GraphKind::Stencil1d { width: 4, steps: 4 }, seed)
                .grain(10)
                .payload(16)
                .build(),
        )
    };
    let a = mk(1);
    let b = mk(2);
    let ka = run_local(&rt, &a).expect("a");
    let kb = run_local(&rt, &b).expect("b");
    assert_ne!(ka, kb, "seed must flow into the computed values");
    assert_eq!(
        run_distributed_loopback(2, 1, &a).expect("dist a"),
        ka,
        "distributed must track the seed too"
    );
}
