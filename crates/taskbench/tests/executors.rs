//! Cross-executor equivalence: one graph description, three execution
//! paths — single runtime, grain-service job, and a 2-locality grain-net
//! world with cross-partition edges traveling as parcels — must produce
//! the *same* checksum, equal to the sequential reference. This is the
//! contract that makes the recorded (graph × grain × comm) surface
//! comparable across executors.

use grain_runtime::Runtime;
use grain_service::{JobService, JobSpec};
use grain_taskbench::{
    all_kinds, run_distributed_loopback, run_local, run_service_job, GraphKind, GraphSpec,
};
use std::sync::Arc;

/// The satellite's pinned case: a seeded random DAG with per-edge
/// payload jitter, identical across all three executors.
#[test]
fn random_dag_checksum_is_identical_across_all_three_executors() {
    let graph = Arc::new(
        GraphSpec::shape(
            GraphKind::RandomDag {
                width: 6,
                steps: 7,
                max_deps: 3,
            },
            0xE9_01,
        )
        .grain(30)
        .payload(128)
        .build(),
    );
    let want = graph.checksum_reference();

    let rt = Runtime::with_workers(2);
    assert_eq!(run_local(&rt, &graph).expect("local"), want, "local");

    let service = JobService::with_workers(2);
    let via_job = run_service_job(&service, JobSpec::new("eq-dag", "test"), &graph)
        .expect("service job completes");
    assert_eq!(via_job, want, "service");

    let dist = run_distributed_loopback(2, 1, &graph).expect("distributed");
    assert_eq!(dist, want, "2-locality");
}

/// Every family agrees across executors, with the distributed world
/// sized so each graph actually splits across localities.
#[test]
fn every_family_agrees_across_executors() {
    let service = JobService::with_workers(2);
    let rt = Runtime::with_workers(2);
    for kind in all_kinds(36) {
        let graph = Arc::new(
            GraphSpec::shape(kind, 0xFA_77)
                .grain(15)
                .payload(48)
                .build(),
        );
        let want = graph.checksum_reference();
        let name = kind.name();

        assert_eq!(
            run_local(&rt, &graph).expect("local"),
            want,
            "{name}: local"
        );
        let via_job = run_service_job(&service, JobSpec::new(name, "test"), &graph)
            .expect("service job completes");
        assert_eq!(via_job, want, "{name}: service");
        let dist = run_distributed_loopback(2, 1, &graph).expect("distributed");
        assert_eq!(dist, want, "{name}: 2-locality");
    }
}

/// Bit-identity across *feature configurations*, not just executors:
/// the checksum of this fixed spec is pinned to a constant, so a run
/// with `task-slab`/`coarse-clock`/`parcel-reuse` enabled must produce
/// the exact same bits as the default build — in a different process,
/// on a different day. The hot-path features recycle allocations and
/// batch clock reads; none of them may perturb a single payload byte.
#[test]
fn pinned_golden_checksum_is_identical_in_every_feature_configuration() {
    const GOLDEN: u64 = 0x2FF4_1252_9F64_BCE0;
    let graph = Arc::new(
        GraphSpec::shape(
            GraphKind::RandomDag {
                width: 5,
                steps: 6,
                max_deps: 2,
            },
            0x5EED_CAFE,
        )
        .grain(25)
        .payload(96)
        .build(),
    );
    assert_eq!(
        graph.checksum_reference(),
        GOLDEN,
        "sequential reference drifted from the pinned golden"
    );
    let rt = Runtime::with_workers(2);
    assert_eq!(
        run_local(&rt, &graph).expect("local"),
        GOLDEN,
        "runtime executor drifted from the pinned golden"
    );
    assert_eq!(
        run_distributed_loopback(2, 1, &graph).expect("distributed"),
        GOLDEN,
        "parcel path drifted from the pinned golden"
    );
}

/// Seed sensitivity survives execution: two seeds give two different
/// checksums on every executor (so the equivalence tests above cannot
/// pass vacuously via a constant).
#[test]
fn different_seeds_give_different_checksums_on_every_executor() {
    let rt = Runtime::with_workers(2);
    let mk = |seed| {
        Arc::new(
            GraphSpec::shape(GraphKind::Stencil1d { width: 4, steps: 4 }, seed)
                .grain(10)
                .payload(16)
                .build(),
        )
    };
    let a = mk(1);
    let b = mk(2);
    let ka = run_local(&rt, &a).expect("a");
    let kb = run_local(&rt, &b).expect("b");
    assert_ne!(ka, kb, "seed must flow into the computed values");
    assert_eq!(
        run_distributed_loopback(2, 1, &a).expect("dist a"),
        ka,
        "distributed must track the seed too"
    );
}
