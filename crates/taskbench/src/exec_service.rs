//! Executor (b): the graph as a grain-service **job**.
//!
//! The job's root task spawns the same dataflow the single-runtime
//! executor builds — through its [`TaskContext`], so every node task
//! joins the job's group and inherits its tenant, counters, deadline
//! budget, and cancellation. The checksum leaves the job through a
//! promise (not the group latch), so the caller observes the value
//! race-free even though `JobHandle::wait` only joins the group.

#![deny(clippy::unwrap_used)]

use crate::exec_local::{partial_checksum, spawn_range, JOIN_TIMEOUT};
use crate::graph::TaskGraph;
use grain_runtime::grain_counters::sync::Mutex;
use grain_runtime::{channel, when_all, TaskError};
use grain_service::{JobService, JobSpec, JobState};
use std::sync::Arc;

/// Submit `graph` as one job under `spec` and wait for its checksum.
///
/// Errors surface the job's terminal state: a rejected/shed/timed-out
/// job returns `Err` with that state rather than a checksum. The job
/// body is re-runnable, so it composes with
/// [`grain_service::FailurePolicy::RetryWithBackoff`].
pub fn run_service_job(
    service: &JobService,
    spec: JobSpec,
    graph: &Arc<TaskGraph>,
) -> Result<u64, JobError> {
    let spec = spec.estimated_tasks(graph.len() as u64 + 1);
    let (promise, sink) = channel::<u64>();
    let slot = Arc::new(Mutex::new(Some(promise)));
    let graph2 = Arc::clone(graph);
    let handle = service.submit(spec, move |ctx| {
        let graph = Arc::clone(&graph2);
        let slot = Arc::clone(&slot);
        let futs = spawn_range(ctx, &graph, 0..graph.len() as u32, |e| {
            unreachable!("full-range spawn has no ghost edges: {e:?}")
        });
        when_all(&futs).on_settled(move |settled| {
            let promise = slot.lock().take();
            if let Some(promise) = promise {
                match settled {
                    Ok(vals) => promise.set(partial_checksum(0, vals)),
                    Err(e) => promise.fail(e.clone()),
                }
            }
        });
    });
    let outcome = handle.wait();
    if outcome.state != JobState::Completed {
        return Err(JobError::NotCompleted {
            state: outcome.state,
            fault: outcome.fault,
        });
    }
    match sink.wait_timeout(JOIN_TIMEOUT) {
        Ok(v) => Ok(*v),
        Err(e) => Err(JobError::Sink(e)),
    }
}

/// Why a service-executed graph produced no checksum.
#[derive(Debug, Clone)]
pub enum JobError {
    /// The job ended in a non-`Completed` terminal state.
    NotCompleted {
        /// The terminal state.
        state: JobState,
        /// The first task fault, when the state is fault-related.
        fault: Option<TaskError>,
    },
    /// The job completed but the checksum future faulted (should be
    /// impossible for a completed job; surfaced rather than hidden).
    Sink(TaskError),
}

impl std::fmt::Display for JobError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            JobError::NotCompleted {
                state,
                fault: Some(e),
            } => {
                write!(f, "job ended {state:?}: {e}")
            }
            JobError::NotCompleted { state, fault: None } => write!(f, "job ended {state:?}"),
            JobError::Sink(e) => write!(f, "checksum future faulted: {e}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::{all_kinds, GraphSpec};

    #[test]
    fn service_job_matches_reference_for_every_family() {
        let service = JobService::with_workers(2);
        for kind in all_kinds(32) {
            let graph = Arc::new(GraphSpec::shape(kind, 0x10b).grain(20).payload(32).build());
            let sum = run_service_job(&service, JobSpec::new(kind.name(), "bench"), &graph)
                .expect("job completes");
            assert_eq!(sum, graph.checksum_reference(), "{}", kind.name());
        }
    }

    #[test]
    fn per_job_counters_see_the_graph_tasks() {
        let service = JobService::with_workers(2);
        let graph = Arc::new(
            GraphSpec::shape(crate::graph::GraphKind::Sweep { width: 4, steps: 3 }, 5)
                .grain(10)
                .build(),
        );
        let sum =
            run_service_job(&service, JobSpec::new("sweep", "t"), &graph).expect("job completes");
        assert_eq!(sum, graph.checksum_reference());
    }
}
