//! Executor (c): the graph partitioned across grain-net localities.
//!
//! Node ids are split into contiguous blocks, one per locality (ids are
//! a topological order, so a block is a level-contiguous slab of the
//! graph). Each locality spawns its own block through the shared
//! spawning core; an edge whose endpoints live on different localities
//! becomes a **remote edge fetch**: the consumer calls the deferred
//! `taskbench/edge` action on the producer's locality and receives the
//! edge's *payload bytes* — the actual communication volume travels as a
//! parcel, then is folded on arrival into the same contribution the
//! in-process executors compute locally. Per-locality partial checksums
//! are combined by `collect`, and wrapping addition makes the total
//! independent of the partitioning.
//!
//! The exchange is pull-based and barrier-free, exactly like the
//! distributed stencil: either side of an edge may arrive first at the
//! [`EdgeBoard`]; a request for a not-yet-computed edge gets a deferred
//! reply sent when the producing task settles. Dead peers settle ghost
//! futures with `TaskError::Disconnected`, which propagates through the
//! dataflow into the partial checksum — an error, never a hang.

#![deny(clippy::unwrap_used)]

use crate::exec_local::{partial_checksum, spawn_range, JOIN_TIMEOUT};
use crate::graph::TaskGraph;
use crate::work;
use grain_metrics::{RunMeta, RunRecord};
use grain_net::bootstrap::Fabric;
use grain_net::locality::Locality;
use grain_runtime::grain_counters::sync::Mutex;
use grain_runtime::{channel, when_all, Promise, RuntimeConfig, SharedFuture, TaskError};
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// Name of the deferred edge-payload action.
const ACTION_EDGE: &str = "taskbench/edge";
/// Name of the deferred partial-checksum action.
const ACTION_PARTIAL: &str = "taskbench/partial";

/// Contiguous block of node ids owned by locality `k` of `world`:
/// `(offset, count)`, balanced to within one node.
pub fn block_of(k: usize, world: usize, nodes: usize) -> (u32, u32) {
    let base = nodes / world;
    let extra = nodes % world;
    let count = base + usize::from(k < extra);
    let offset = k * base + k.min(extra);
    (offset as u32, count as u32)
}

/// One published edge: the future remote consumers wait on and (until
/// the producer links it) the promise that will settle it.
struct Slot {
    future: SharedFuture<Vec<u8>>,
    promise: Option<Promise<Vec<u8>>>,
}

/// Meeting point of edge producers and remote consumers, keyed by
/// `(src, dst)`. Either side may arrive first.
struct EdgeBoard {
    slots: Mutex<HashMap<(u32, u32), Slot>>,
}

impl EdgeBoard {
    fn new() -> Self {
        Self {
            slots: Mutex::new(HashMap::new()),
        }
    }

    fn with_slot<R>(&self, key: (u32, u32), f: impl FnOnce(&mut Slot) -> R) -> R {
        let mut slots = self.slots.lock();
        let slot = slots.entry(key).or_insert_with(|| {
            let (promise, future) = channel();
            Slot {
                future,
                promise: Some(promise),
            }
        });
        f(slot)
    }

    /// The future a remote requester waits on.
    fn future_of(&self, key: (u32, u32)) -> SharedFuture<Vec<u8>> {
        self.with_slot(key, |s| s.future.clone())
    }

    /// Link the slot to the producing node's value future: when it
    /// settles, the expanded payload bytes (or the error) follow.
    fn publish(&self, key: (u32, u32), salt: u64, len: u32, src: &SharedFuture<u64>) {
        let promise = self.with_slot(key, |s| s.promise.take());
        if let Some(promise) = promise {
            src.on_settled(move |settled| match settled {
                Ok(v) => promise.set(work::edge_payload(**v, salt, len)),
                Err(e) => promise.fail(e.clone()),
            });
        }
    }
}

/// State shared between the action handlers and the driving code.
struct BenchState {
    edges: EdgeBoard,
    partial: SharedFuture<u64>,
    partial_promise: Mutex<Option<Promise<u64>>>,
    started: AtomicBool,
}

/// A distributed taskbench instance installed on one locality.
///
/// Protocol, mirroring the distributed stencil: [`DistTaskBench::install`]
/// on **every** locality first (registering the actions peers call),
/// then [`DistTaskBench::start`] everywhere, then
/// [`DistTaskBench::collect`] wherever the total is wanted.
pub struct DistTaskBench {
    loc: Locality,
    graph: Arc<TaskGraph>,
    state: Arc<BenchState>,
}

impl DistTaskBench {
    /// Register this locality's actions and prepare (but not start) its
    /// block of the graph.
    ///
    /// Panics if the graph has fewer nodes than the world has
    /// localities (every locality must own at least one node).
    pub fn install(loc: &Locality, graph: Arc<TaskGraph>) -> Self {
        assert!(
            graph.len() >= loc.world(),
            "graph has {} nodes but the world has {} localities",
            graph.len(),
            loc.world()
        );
        let (partial_promise, partial) = channel();
        let state = Arc::new(BenchState {
            edges: EdgeBoard::new(),
            partial,
            partial_promise: Mutex::new(Some(partial_promise)),
            started: AtomicBool::new(false),
        });
        {
            let state = Arc::clone(&state);
            loc.register_deferred_action(ACTION_EDGE, move |_rt, (src, dst): (u32, u32)| {
                state.edges.future_of((src, dst))
            });
        }
        {
            let state = Arc::clone(&state);
            loc.register_deferred_action(ACTION_PARTIAL, move |_rt, (): ()| state.partial.clone());
        }
        Self {
            loc: loc.clone(),
            graph,
            state,
        }
    }

    /// The id of the locality owning node `id` under this graph's
    /// partitioning.
    pub fn owner_of(&self, id: u32) -> usize {
        let world = self.loc.world();
        (0..world)
            .find(|&k| {
                let (ofs, cnt) = block_of(k, world, self.graph.len());
                id >= ofs && id < ofs + cnt
            })
            .unwrap_or(world - 1)
    }

    /// Spawn this locality's block and link every boundary edge: ghost
    /// futures for remote predecessors, published payloads for remote
    /// consumers. Barrier-free; call on every locality.
    pub fn start(&self) {
        assert!(
            !self.state.started.swap(true, Ordering::SeqCst),
            "start() called twice"
        );
        let (offset, count) = block_of(self.loc.id(), self.loc.world(), self.graph.len());
        let range = offset..offset + count;
        let futs = {
            let loc = &self.loc;
            let me = self.loc.id();
            let graph = &self.graph;
            spawn_range(loc.runtime().as_ref(), graph, range.clone(), |e| {
                let owner = owner_of_node(e.src, loc.world(), graph.len());
                debug_assert_ne!(owner, me, "ghost requested for a local edge");
                ghost_contrib(loc.async_remote(owner, ACTION_EDGE, &(e.src, e.dst)))
            })
        };

        // Publish every edge leaving this block for a remote consumer.
        let spec = self.graph.spec;
        for e in &self.graph.edges {
            if !range.contains(&e.src) || range.contains(&e.dst) {
                continue;
            }
            self.state.edges.publish(
                (e.src, e.dst),
                work::edge_salt(spec.seed, e.src, e.dst),
                e.payload,
                &futs[(e.src - range.start) as usize],
            );
        }

        // Fold the block into this locality's partial checksum.
        let promise = self.state.partial_promise.lock().take();
        if let Some(promise) = promise {
            let start = range.start;
            when_all(&futs).on_settled(move |settled| match settled {
                Ok(vals) => promise.set(partial_checksum(start, vals)),
                Err(e) => promise.fail(e.clone()),
            });
        }
    }

    /// The locality hosting this instance.
    pub fn locality(&self) -> &Locality {
        &self.loc
    }

    /// This locality's partial checksum (its block only). A dead peer
    /// surfaces as an `Err` naming the lost locality, never a hang.
    pub fn local_partial(&self) -> Result<u64, TaskError> {
        self.state.partial.wait_timeout(JOIN_TIMEOUT).map(|v| *v)
    }

    /// Collect the full checksum: fetch every locality's partial
    /// (including our own, via the self-call fast path) and combine
    /// with wrapping addition — partition-independent by construction.
    pub fn collect(&self) -> Result<u64, TaskError> {
        let world = self.loc.world();
        let futures: Vec<SharedFuture<u64>> = (0..world)
            .map(|k| self.loc.async_remote(k, ACTION_PARTIAL, &()))
            .collect();
        let mut total = 0u64;
        for f in futures {
            total = total.wrapping_add(*f.wait_timeout(JOIN_TIMEOUT)?);
        }
        Ok(total)
    }
}

/// Free-function twin of [`DistTaskBench::owner_of`], usable from the
/// ghost-resolver closure while `self` is partially borrowed.
fn owner_of_node(id: u32, world: usize, nodes: usize) -> usize {
    (0..world)
        .find(|&k| {
            let (ofs, cnt) = block_of(k, world, nodes);
            id >= ofs && id < ofs + cnt
        })
        .unwrap_or(world - 1)
}

/// Adapt a remote payload future into a contribution future: fold the
/// parcel's bytes on arrival.
fn ghost_contrib(payload: SharedFuture<Vec<u8>>) -> SharedFuture<u64> {
    let (promise, future) = channel();
    payload.on_settled(move |settled| match settled {
        Ok(bytes) => promise.set(work::fold_bytes(bytes)),
        Err(e) => promise.fail(e.clone()),
    });
    future
}

/// Hermetic convenience runner: a loopback world of `world` localities
/// (`workers_per` workers each), the graph partitioned across it,
/// collected on locality 0, fabric shut down. Returns the checksum.
pub fn run_distributed_loopback(
    world: usize,
    workers_per: usize,
    graph: &Arc<TaskGraph>,
) -> Result<u64, TaskError> {
    let fabric = Fabric::loopback(world, |_| RuntimeConfig::with_workers(workers_per));
    let instances: Vec<DistTaskBench> = (0..world)
        .map(|k| DistTaskBench::install(fabric.locality(k), Arc::clone(graph)))
        .collect();
    for inst in &instances {
        inst.start();
    }
    let total = instances[0].collect();
    fabric.shutdown();
    total
}

/// One locality's share of a measured distributed run: its partial
/// checksum plus the paper's counter record over exactly its block.
#[derive(Debug, Clone)]
pub struct MeasuredLocality {
    /// Locality id in the loopback world.
    pub locality: usize,
    /// Partial checksum over this locality's node block.
    pub partial_checksum: u64,
    /// Counter record of this locality's runtime for the measured
    /// region (Eqs. 1–6 derivable via [`RunRecord`] methods).
    pub record: RunRecord,
}

/// Measured twin of [`run_distributed_loopback`]: the same hermetic
/// loopback run, but with every locality's runtime counters reset at
/// the start of the measured region and emitted as one [`RunRecord`]
/// per locality (`nx` carries the grain knob, `np` the width bound,
/// `nt` the level count; the platform string names the locality).
/// Returns the combined checksum plus the per-locality records.
pub fn measure_distributed_loopback(
    world: usize,
    workers_per: usize,
    graph: &Arc<TaskGraph>,
) -> Result<(u64, Vec<MeasuredLocality>), TaskError> {
    let fabric = Fabric::loopback(world, |_| RuntimeConfig::with_workers(workers_per));
    let instances: Vec<DistTaskBench> = (0..world)
        .map(|k| DistTaskBench::install(fabric.locality(k), Arc::clone(graph)))
        .collect();
    for inst in &instances {
        let rt = inst.locality().runtime();
        rt.wait_idle();
        rt.reset_counters();
    }
    let t0 = std::time::Instant::now();
    for inst in &instances {
        inst.start();
    }
    let mut total = 0u64;
    let mut measured = Vec::with_capacity(world);
    let mut failure = None;
    for (k, inst) in instances.iter().enumerate() {
        match inst.local_partial() {
            Ok(partial) => {
                total = total.wrapping_add(partial);
                let rt = inst.locality().runtime();
                rt.wait_idle();
                let wall_s = t0.elapsed().as_secs_f64();
                let meta = RunMeta::workload(
                    &format!("loopback/{k}"),
                    rt.num_workers(),
                    graph.spec.grain_iters as usize,
                    graph.width_bound(),
                    graph.levels(),
                );
                measured.push(MeasuredLocality {
                    locality: k,
                    partial_checksum: partial,
                    record: RunRecord::from_counters(rt.as_ref(), wall_s, meta),
                });
            }
            Err(e) => {
                failure = Some(e);
                break;
            }
        }
    }
    fabric.shutdown();
    match failure {
        Some(e) => Err(e),
        None => Ok((total, measured)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::{GraphKind, GraphSpec};

    #[test]
    fn blocks_cover_ids_exactly_once() {
        for (world, nodes) in [(1, 1), (2, 5), (3, 7), (4, 4), (3, 100)] {
            let mut covered = Vec::new();
            for k in 0..world {
                let (ofs, cnt) = block_of(k, world, nodes);
                assert!(cnt >= 1, "world={world} nodes={nodes} k={k}");
                covered.extend(ofs..ofs + cnt);
            }
            assert_eq!(covered, (0..nodes as u32).collect::<Vec<_>>());
        }
    }

    #[test]
    fn single_locality_world_matches_reference() {
        let graph = Arc::new(
            GraphSpec::shape(GraphKind::Stencil1d { width: 4, steps: 4 }, 0xd157)
                .grain(15)
                .payload(24)
                .build(),
        );
        let sum = run_distributed_loopback(1, 2, &graph).expect("settles");
        assert_eq!(sum, graph.checksum_reference());
    }

    #[test]
    fn measured_loopback_emits_one_record_per_locality() {
        let graph = Arc::new(
            GraphSpec::shape(GraphKind::Stencil1d { width: 6, steps: 7 }, 0x9ea5)
                .grain(12)
                .payload(32)
                .build(),
        );
        let (total, localities) = measure_distributed_loopback(2, 1, &graph).expect("settles");
        assert_eq!(total, graph.checksum_reference());
        assert_eq!(localities.len(), 2);
        let mut tasks = 0u64;
        let mut recombined = 0u64;
        for m in &localities {
            assert!(m.record.wall_s > 0.0, "locality {}", m.locality);
            assert!(
                m.record.sum_func_ns >= m.record.sum_exec_ns,
                "locality {}",
                m.locality
            );
            tasks += m.record.tasks;
            recombined = recombined.wrapping_add(m.partial_checksum);
        }
        // Every locality executed its own block as real tasks, and the
        // partials recombine to the collected total.
        assert!(tasks >= graph.len() as u64);
        assert_eq!(recombined, total);
    }

    #[test]
    fn two_locality_world_ships_payloads_and_matches_reference() {
        let graph = Arc::new(
            GraphSpec::shape(
                GraphKind::RandomDag {
                    width: 5,
                    steps: 6,
                    max_deps: 3,
                },
                0xd1572,
            )
            .grain(20)
            .payload(96)
            .build(),
        );
        let fabric = Fabric::loopback(2, |_| RuntimeConfig::with_workers(1));
        let instances: Vec<DistTaskBench> = (0..2)
            .map(|k| DistTaskBench::install(fabric.locality(k), Arc::clone(&graph)))
            .collect();
        for inst in &instances {
            inst.start();
        }
        let total = instances[0].collect().expect("settles");
        assert_eq!(total, graph.checksum_reference());
        // Cross edges actually traveled: bytes were sent somewhere.
        let bytes: u64 = (0..2)
            .map(|k| fabric.locality(k).parcels().bytes_sent.get())
            .sum();
        assert!(bytes > 0, "cross-partition payloads must ride parcels");
        fabric.shutdown();
    }
}
