//! Bridge from storm plans to graph-shaped job bodies.
//!
//! [`grain_sim::storm`] describes *who submits what, when* — including,
//! per tenant, a [`GraphFamily`]. This module turns a planned event's
//! `(family, tasks, grain)` into a concrete [`GraphSpec`] (and a
//! ready-to-submit job body), so the chaos-soak harness exercises the
//! service with realistic heterogeneous DAG shapes instead of flat
//! spawn loops.
//!
//! Shapes are deterministic functions of `(family, tasks, seed)`: no
//! randomness is consumed beyond the graph seed itself, so a storm
//! replay re-submits bit-identical job bodies.

use crate::exec_local::spawn_range;
use crate::graph::{GraphKind, GraphSpec, TaskGraph};
use grain_runtime::TaskContext;
use grain_sim::storm::GraphFamily;
use std::sync::Arc;

/// Map a storm family at a task budget onto a concrete graph kind.
/// Returns `None` for [`GraphFamily::Flat`] — the caller keeps the
/// legacy root-spawns-children shape for that one.
pub fn kind_for_family(family: GraphFamily, tasks: u64) -> Option<GraphKind> {
    let tasks = tasks.max(2) as usize;
    let side = (tasks as f64).sqrt().ceil() as usize;
    let steps = tasks.div_ceil(side).saturating_sub(1);
    match family {
        GraphFamily::Flat => None,
        GraphFamily::Stencil => Some(GraphKind::Stencil1d { width: side, steps }),
        GraphFamily::Butterfly => {
            let mut bw = 2usize;
            while bw * 2 * (bw.trailing_zeros() as usize + 2) <= tasks && bw < 1 << 16 {
                bw *= 2;
            }
            Some(GraphKind::Butterfly { width: bw })
        }
        GraphFamily::Tree => Some(GraphKind::TreeReduce {
            leaves: (tasks / 2).max(1),
            fanout: 2,
        }),
        GraphFamily::RandomDag => Some(GraphKind::RandomDag {
            width: side,
            steps,
            max_deps: 3,
        }),
        GraphFamily::Sweep => Some(GraphKind::Sweep { width: side, steps }),
    }
}

/// The graph a storm event's job body executes: family shape at the
/// event's task budget, grain in busy-work iterations, seeded from the
/// storm seed and the event's identity.
pub fn spec_for_event(
    family: GraphFamily,
    tasks: u64,
    grain_iters: u64,
    payload_bytes: u32,
    seed: u64,
) -> Option<GraphSpec> {
    kind_for_family(family, tasks).map(|kind| {
        GraphSpec::shape(kind, seed)
            .grain(grain_iters)
            .payload(payload_bytes)
    })
}

/// Spawn `graph` inside a job's root task: the whole dataflow joins the
/// job's group, so cancellation, deadline budgets, and per-job counters
/// all apply. The checksum is discarded — storm jobs are load, not
/// queries.
pub fn spawn_in_job(ctx: &TaskContext<'_>, graph: &Arc<TaskGraph>) {
    let _ = spawn_range(ctx, graph, 0..graph.len() as u32, |e| {
        unreachable!("full-range spawn has no ghost edges: {e:?}")
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use grain_runtime::Runtime;

    #[test]
    fn every_family_maps_to_a_kind_except_flat() {
        for family in [
            GraphFamily::Stencil,
            GraphFamily::Butterfly,
            GraphFamily::Tree,
            GraphFamily::RandomDag,
            GraphFamily::Sweep,
        ] {
            let kind = kind_for_family(family, 24).expect("non-flat family maps");
            let g = GraphSpec::shape(kind, 1).build();
            assert!(!g.is_empty(), "{family:?}");
        }
        assert!(kind_for_family(GraphFamily::Flat, 24).is_none());
    }

    #[test]
    fn specs_are_deterministic_in_their_inputs() {
        let a = spec_for_event(GraphFamily::RandomDag, 30, 100, 64, 7).expect("maps");
        let b = spec_for_event(GraphFamily::RandomDag, 30, 100, 64, 7).expect("maps");
        assert_eq!(a, b);
        assert_eq!(a.build().fingerprint(), b.build().fingerprint());
    }

    #[test]
    fn node_budget_stays_close_to_the_event_tasks() {
        for family in [GraphFamily::Stencil, GraphFamily::Tree, GraphFamily::Sweep] {
            for tasks in [2u64, 8, 50, 300] {
                let spec = spec_for_event(family, tasks, 1, 0, 3).expect("maps");
                let n = spec.build().len() as u64;
                assert!(n <= tasks * 3 + 4, "{family:?} at {tasks} built {n} nodes");
            }
        }
    }

    #[test]
    fn spawn_in_job_runs_the_graph_under_a_group() {
        let rt = Runtime::with_workers(2);
        let group = grain_runtime::TaskGroup::new();
        let graph = Arc::new(
            spec_for_event(GraphFamily::Butterfly, 16, 10, 8, 11)
                .expect("maps")
                .build(),
        );
        let g2 = Arc::clone(&graph);
        rt.spawn_in(&group, grain_runtime::Priority::Normal, move |ctx| {
            spawn_in_job(ctx, &g2);
        });
        group.wait();
        assert_eq!(group.completed(), graph.len() as u64 + 1, "root + nodes");
    }
}
