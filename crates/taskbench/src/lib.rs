//! # grain-taskbench — a parameterized dependency-graph workload generator
//!
//! The paper characterizes task-size overheads with one application (the
//! 1-D stencil), so every conclusion is a single curve. This crate, in
//! the spirit of Task Bench, turns that curve into a **surface**: a
//! deterministic, seeded generator of dependency graphs parameterized by
//!
//! * **graph family** ([`GraphKind`]): 1-D stencil halo, FFT butterfly,
//!   tree reduce-broadcast, seeded random DAG, embarrassingly-parallel
//!   sweep;
//! * **task grain** ([`GraphSpec::grain_iters`]): busy-work iterations
//!   per task, mapped to durations via host [`Calibration`];
//! * **communication volume** ([`GraphSpec::payload_bytes`]): bytes
//!   carried per dependency edge;
//! * **duration dispersion** ([`GraphSpec::cov`]): seeded per-node
//!   lognormal or bimodal multipliers on the grain, so irregular
//!   workloads (stragglers, heavy tails) are first-class points on the
//!   surface without perturbing graph structure or payload streams.
//!
//! One immutable [`TaskGraph`] description feeds three executors:
//!
//! * [`exec_local`] — single runtime, via `dataflow`/futures;
//! * [`exec_service`] — as a [`grain_service::JobService`] job, so
//!   storms get realistic heterogeneous tenant shapes;
//! * [`exec_net`] — across grain-net localities, with edges that cross
//!   a partition boundary traveling as parcels (payload bytes on the
//!   wire).
//!
//! Every node computes a pure function of the graph description
//! ([`work`]), so all three executors — and the sequential reference
//! [`TaskGraph::checksum_reference`] — produce bit-identical checksums;
//! the cross-executor equivalence test pins that down. Runs emit the
//! paper's Eq. 1–6 metrics through `grain_metrics::RunRecord`
//! ([`measure_local`]) so the granularity characterization becomes a
//! (graph × grain × comm) surface in the same units as the paper's
//! figures.
//!
//! ```
//! use grain_taskbench::{GraphKind, GraphSpec};
//! use grain_runtime::Runtime;
//!
//! let spec = GraphSpec::shape(GraphKind::Butterfly { width: 8 }, 42)
//!     .grain(100)
//!     .payload(64);
//! let graph = spec.build();
//! let rt = Runtime::with_workers(2);
//! let sum = grain_taskbench::exec_local::run_local(&rt, &graph).expect("run settles");
//! assert_eq!(sum, graph.checksum_reference());
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod exec_local;
pub mod exec_net;
pub mod exec_service;
pub mod graph;
pub mod storm;
pub mod work;

pub use exec_local::{measure_local, run_local, MeasuredRun};
pub use exec_net::{measure_distributed_loopback, MeasuredLocality};
pub use exec_net::{run_distributed_loopback, DistTaskBench};
pub use exec_service::run_service_job;
pub use graph::{all_kinds, Cov, Edge, GraphKind, GraphSpec, Node, TaskGraph};
pub use work::Calibration;
