//! The dependency-graph generator: five parameterized workload families
//! behind one immutable [`TaskGraph`] description.
//!
//! A [`GraphSpec`] is (family × task-grain × communication volume ×
//! seed); [`GraphSpec::build`] expands it into an explicit node/edge
//! list. Generation is **deterministic**: equal specs produce
//! bit-identical graphs (node vector, edge vector, per-edge payload
//! sizes), which the property suite sweeps over every family.
//!
//! Structural invariants, relied on by every executor:
//!
//! * **Node ids are a topological order**: every edge satisfies
//!   `src < dst`, so graphs are acyclic by construction and executors
//!   may build futures in id order without a sort.
//! * **Nodes are leveled**: node `(step, lane)` lives at `step`, edges
//!   only go from `step − 1` to `step` (except the sweep family, which
//!   has per-lane chains and no cross-lane edges at all).
//! * **Width-bounded**: no level ever holds more than
//!   [`TaskGraph::width_bound`] nodes.
//! * **Predecessors are sorted** by ascending source id
//!   ([`TaskGraph::preds`] returns them in edge-array order, which the
//!   builder keeps sorted), so the contribution fold order of
//!   [`crate::work::node_value`] is executor-independent.

#![deny(clippy::unwrap_used)]

use crate::work;
use grain_sim::rng::Pcg32;

/// The graph family and its shape parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GraphKind {
    /// 1-D stencil with halo exchange: `width` lanes × `steps` levels;
    /// node `(s, l)` depends on `(s−1, l−1)`, `(s−1, l)`, `(s−1, l+1)`
    /// clamped at the boundary — the paper's application, generalized.
    Stencil1d {
        /// Lanes (partitions).
        width: usize,
        /// Time steps beyond the initial level.
        steps: usize,
    },
    /// FFT butterfly: `width` (rounded up to a power of two) lanes,
    /// `log2(width)` levels; node `(s, l)` depends on `(s−1, l)` and
    /// `(s−1, l ⊕ 2^(s−1))`.
    Butterfly {
        /// Lanes; rounded up to the next power of two, minimum 2.
        width: usize,
    },
    /// Tree reduce-then-broadcast: `leaves` leaves folded `fanout`-ary
    /// to a root, then mirrored back out to `leaves` sinks.
    TreeReduce {
        /// Leaf count, minimum 1.
        leaves: usize,
        /// Reduction arity, minimum 2.
        fanout: usize,
    },
    /// Seeded random DAG: `width` lanes × `steps` levels; each node
    /// draws `1..=max_deps` distinct predecessors from the previous
    /// level, and its edge payloads jitter around the configured volume.
    RandomDag {
        /// Lanes.
        width: usize,
        /// Levels beyond the first.
        steps: usize,
        /// Max predecessors per node (clamped to the level width).
        max_deps: usize,
    },
    /// Embarrassingly-parallel sweep: `width` independent lanes, each a
    /// chain of `steps + 1` nodes — no cross-lane edges.
    Sweep {
        /// Independent lanes.
        width: usize,
        /// Chain length beyond the first node.
        steps: usize,
    },
}

impl GraphKind {
    /// Short stable name, used in reports and JSON snapshots.
    pub fn name(&self) -> &'static str {
        match self {
            GraphKind::Stencil1d { .. } => "stencil",
            GraphKind::Butterfly { .. } => "butterfly",
            GraphKind::TreeReduce { .. } => "tree",
            GraphKind::RandomDag { .. } => "random-dag",
            GraphKind::Sweep { .. } => "sweep",
        }
    }
}

/// Per-node task-duration dispersion (the COV knob): how each node's
/// busy-work iteration count is derived from [`GraphSpec::grain_iters`].
///
/// The multiplier for node `id` is a **pure function** of
/// `(seed, id, cov)` — no RNG stream is consumed, so adding dispersion
/// never perturbs graph structure, edge payloads, or any other seeded
/// stream. `Uniform` reproduces the legacy behavior bit-for-bit
/// (every node runs exactly `grain_iters`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Cov {
    /// Every node runs exactly `grain_iters` (legacy behavior).
    #[default]
    Uniform,
    /// Mean-preserving lognormal multiplier with coefficient of
    /// variation `cov_centi / 100` (e.g. `150` ⇒ COV ≈ 1.5). Node
    /// durations spread continuously while the expected total work
    /// stays `nodes × grain_iters`.
    Lognormal {
        /// Coefficient of variation in hundredths (0 degenerates to
        /// `Uniform`).
        cov_centi: u32,
    },
    /// Two-point distribution: `heavy_pct` percent of nodes run
    /// `grain_iters × ratio`, the rest run `grain_iters` — the
    /// straggler-task shape (a few long poles amid uniform work).
    Bimodal {
        /// Percent of nodes that are heavy, clamped to 0..=100.
        heavy_pct: u32,
        /// Iteration multiplier for heavy nodes (≥ 1).
        ratio: u32,
    },
}

impl Cov {
    /// Short stable name for reports and JSON snapshots.
    pub fn name(&self) -> &'static str {
        match self {
            Cov::Uniform => "uniform",
            Cov::Lognormal { .. } => "lognormal",
            Cov::Bimodal { .. } => "bimodal",
        }
    }
}

/// A full workload point: family × grain × communication volume × seed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GraphSpec {
    /// Graph family and shape.
    pub kind: GraphKind,
    /// Busy-work iterations per task (the task-grain knob; see
    /// [`crate::work::Calibration`] to express it as a duration). With
    /// a non-uniform [`Self::cov`], this is the *nominal* grain each
    /// node's multiplier applies to — see [`Self::node_iters`].
    pub grain_iters: u64,
    /// Bytes carried per dependency edge (the communication-volume
    /// knob). The random-DAG family jitters per edge around this value.
    pub payload_bytes: u32,
    /// Generator seed. Equal seeds ⇒ bit-identical graphs.
    pub seed: u64,
    /// Per-node duration dispersion around `grain_iters`.
    pub cov: Cov,
}

impl GraphSpec {
    /// A spec with grain/volume knobs at zero — shape only.
    pub fn shape(kind: GraphKind, seed: u64) -> Self {
        Self {
            kind,
            grain_iters: 0,
            payload_bytes: 0,
            seed,
            cov: Cov::Uniform,
        }
    }

    /// Set the busy-work iteration count per task.
    pub fn grain(mut self, iters: u64) -> Self {
        self.grain_iters = iters;
        self
    }

    /// Set the per-edge payload volume in bytes.
    pub fn payload(mut self, bytes: u32) -> Self {
        self.payload_bytes = bytes;
        self
    }

    /// Set the per-node duration dispersion.
    pub fn cov(mut self, cov: Cov) -> Self {
        self.cov = cov;
        self
    }

    /// The busy-work iteration count of node `id`: `grain_iters` scaled
    /// by the node's [`Cov`] multiplier. A pure function of
    /// `(seed, id, grain_iters, cov)`; with `Cov::Uniform` it is
    /// exactly `grain_iters` for every node.
    pub fn node_iters(&self, id: u32) -> u64 {
        match self.cov {
            Cov::Uniform => self.grain_iters,
            Cov::Lognormal { cov_centi } => {
                if cov_centi == 0 || self.grain_iters == 0 {
                    return self.grain_iters;
                }
                // Two per-node uniforms from the hash lattice (no RNG
                // stream consumed), Box-Muller to a standard normal,
                // then a mean-preserving lognormal: for X = exp(σZ − σ²/2),
                // E[X] = 1 and COV(X) = sqrt(exp(σ²) − 1).
                let h1 = work::mix64(self.seed ^ (u64::from(id) << 32) ^ 0xc0ff_ee00_0000_0001);
                let h2 = work::mix64(self.seed ^ (u64::from(id) << 32) ^ 0xc0ff_ee00_0000_0002);
                let u1 = ((h1 >> 11) as f64 / (1u64 << 53) as f64).max(1e-12);
                let u2 = (h2 >> 11) as f64 / (1u64 << 53) as f64;
                let z = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
                let cov = f64::from(cov_centi) / 100.0;
                let sigma2 = (1.0 + cov * cov).ln();
                let mult = (sigma2.sqrt() * z - sigma2 / 2.0).exp();
                ((self.grain_iters as f64 * mult).round() as u64).max(1)
            }
            Cov::Bimodal { heavy_pct, ratio } => {
                let heavy_pct = heavy_pct.min(100);
                let h = work::mix64(self.seed ^ (u64::from(id) << 32) ^ 0xb1b0_da1f_0000_0003);
                if (h % 100) < u64::from(heavy_pct) {
                    self.grain_iters.saturating_mul(u64::from(ratio.max(1)))
                } else {
                    self.grain_iters
                }
            }
        }
    }

    /// Expand the spec into an explicit graph.
    pub fn build(&self) -> TaskGraph {
        let mut b = Builder::new(*self);
        match self.kind {
            GraphKind::Stencil1d { width, steps } => b.stencil(width.max(1), steps),
            GraphKind::Butterfly { width } => b.butterfly(width),
            GraphKind::TreeReduce { leaves, fanout } => b.tree(leaves.max(1), fanout.max(2)),
            GraphKind::RandomDag {
                width,
                steps,
                max_deps,
            } => b.random_dag(width.max(1), steps, max_deps.max(1)),
            GraphKind::Sweep { width, steps } => b.sweep(width.max(1), steps),
        }
        b.finish()
    }
}

/// One task in the graph. Ids are implicit: `nodes[i]` has id `i`, and
/// ids ascend in topological (level) order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Node {
    /// Level (0-based). Edges only arrive from `step − 1`.
    pub step: u32,
    /// Position within the level.
    pub lane: u32,
}

/// One dependency edge, carrying `payload` bytes from `src` to `dst`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Edge {
    /// Producing node id (always `< dst`).
    pub src: u32,
    /// Consuming node id.
    pub dst: u32,
    /// Payload volume on this edge, bytes.
    pub payload: u32,
}

/// An immutable, explicitly materialized dependency graph. All three
/// executors consume this one description.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TaskGraph {
    /// The spec this graph was built from.
    pub spec: GraphSpec,
    /// Nodes in topological (level) order; index = id.
    pub nodes: Vec<Node>,
    /// Edges sorted by `(dst, src)`.
    pub edges: Vec<Edge>,
    /// Predecessor index: edges of node `i` are
    /// `edges[pred_index[i] .. pred_index[i + 1]]`.
    pred_index: Vec<u32>,
}

impl TaskGraph {
    /// Node count.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True when the graph has no nodes (never produced by `build`).
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// The incoming edges of `node`, sorted by ascending source id.
    pub fn preds(&self, node: u32) -> &[Edge] {
        let lo = self.pred_index[node as usize] as usize;
        let hi = self.pred_index[node as usize + 1] as usize;
        &self.edges[lo..hi]
    }

    /// The declared upper bound on any level's node count.
    pub fn width_bound(&self) -> usize {
        match self.spec.kind {
            GraphKind::Stencil1d { width, .. }
            | GraphKind::RandomDag { width, .. }
            | GraphKind::Sweep { width, .. } => width.max(1),
            GraphKind::Butterfly { width } => width.max(2).next_power_of_two(),
            GraphKind::TreeReduce { leaves, .. } => leaves.max(1),
        }
    }

    /// The widest level actually generated.
    pub fn max_level_width(&self) -> usize {
        let mut widths: Vec<usize> = Vec::new();
        for n in &self.nodes {
            let s = n.step as usize;
            if widths.len() <= s {
                widths.resize(s + 1, 0);
            }
            widths[s] += 1;
        }
        widths.into_iter().max().unwrap_or(0)
    }

    /// Level count (max step + 1).
    pub fn levels(&self) -> usize {
        self.nodes
            .iter()
            .map(|n| n.step as usize + 1)
            .max()
            .unwrap_or(0)
    }

    /// Total bytes carried across all edges.
    pub fn total_payload_bytes(&self) -> u64 {
        self.edges.iter().map(|e| u64::from(e.payload)).sum()
    }

    /// FNV-1a fingerprint over the spec, nodes and edges — two graphs
    /// are bit-identical iff their fingerprints match (used by the
    /// determinism property sweep).
    pub fn fingerprint(&self) -> u64 {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        let mut fold = |x: u64| {
            for b in x.to_le_bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
        };
        fold(self.spec.grain_iters);
        fold(u64::from(self.spec.payload_bytes));
        fold(self.spec.seed);
        // Folded only when non-uniform, so every fingerprint recorded
        // before the COV axis existed stays valid.
        match self.spec.cov {
            Cov::Uniform => {}
            Cov::Lognormal { cov_centi } => {
                fold(1);
                fold(u64::from(cov_centi));
            }
            Cov::Bimodal { heavy_pct, ratio } => {
                fold(2);
                fold(u64::from(heavy_pct) << 32 | u64::from(ratio));
            }
        }
        for n in &self.nodes {
            fold(u64::from(n.step) << 32 | u64::from(n.lane));
        }
        for e in &self.edges {
            fold(u64::from(e.src) << 32 | u64::from(e.dst));
            fold(u64::from(e.payload));
        }
        h
    }

    /// Sequential reference evaluation: node values in id order, folded
    /// into the graph checksum. Every executor must reproduce exactly
    /// this number.
    pub fn checksum_reference(&self) -> u64 {
        let spec = self.spec;
        let mut values: Vec<u64> = Vec::with_capacity(self.len());
        let mut checksum = 0u64;
        for id in 0..self.len() as u32 {
            let contribs: Vec<u64> = self
                .preds(id)
                .iter()
                .map(|e| {
                    work::contrib_from_value(
                        values[e.src as usize],
                        work::edge_salt(spec.seed, e.src, e.dst),
                        e.payload,
                    )
                })
                .collect();
            let v = work::node_value(
                work::node_seed(spec.seed, id),
                spec.node_iters(id),
                contribs,
            );
            checksum = checksum.wrapping_add(work::checksum_term(id, v));
            values.push(v);
        }
        checksum
    }
}

/// Incremental level-ordered graph builder.
struct Builder {
    spec: GraphSpec,
    nodes: Vec<Node>,
    edges: Vec<Edge>,
}

impl Builder {
    fn new(spec: GraphSpec) -> Self {
        Self {
            spec,
            nodes: Vec::new(),
            edges: Vec::new(),
        }
    }

    /// Append a full level of `width` nodes at `step`; returns the id of
    /// the level's first node.
    fn level(&mut self, step: u32, width: usize) -> u32 {
        let first = self.nodes.len() as u32;
        for lane in 0..width as u32 {
            self.nodes.push(Node { step, lane });
        }
        first
    }

    fn edge(&mut self, src: u32, dst: u32, payload: u32) {
        debug_assert!(src < dst, "edges must point forward: {src} -> {dst}");
        self.edges.push(Edge { src, dst, payload });
    }

    fn stencil(&mut self, width: usize, steps: usize) {
        let p = self.spec.payload_bytes;
        let mut prev = self.level(0, width);
        for s in 1..=steps as u32 {
            let cur = self.level(s, width);
            for l in 0..width {
                let dst = cur + l as u32;
                let lo = l.saturating_sub(1);
                let hi = (l + 1).min(width - 1);
                for n in lo..=hi {
                    self.edge(prev + n as u32, dst, p);
                }
            }
            prev = cur;
        }
    }

    fn butterfly(&mut self, width: usize) {
        let width = width.max(2).next_power_of_two();
        let stages = width.trailing_zeros();
        let p = self.spec.payload_bytes;
        let mut prev = self.level(0, width);
        for s in 1..=stages {
            let cur = self.level(s, width);
            let stride = 1u32 << (s - 1);
            for l in 0..width as u32 {
                let dst = cur + l;
                let partner = l ^ stride;
                let (a, b) = if l < partner {
                    (l, partner)
                } else {
                    (partner, l)
                };
                self.edge(prev + a, dst, p);
                self.edge(prev + b, dst, p);
            }
            prev = cur;
        }
    }

    fn tree(&mut self, leaves: usize, fanout: usize) {
        let p = self.spec.payload_bytes;
        // Reduction: level widths shrink by `fanout` until one node.
        let mut widths = vec![leaves];
        while *widths.last().unwrap_or(&1) > 1 {
            let last = widths[widths.len() - 1];
            widths.push(last.div_ceil(fanout));
        }
        let mut step = 0u32;
        let mut prev = self.level(step, widths[0]);
        let mut prev_width = widths[0];
        for &w in &widths[1..] {
            step += 1;
            let cur = self.level(step, w);
            for l in 0..prev_width {
                self.edge(prev + l as u32, cur + (l / fanout) as u32, p);
            }
            prev = cur;
            prev_width = w;
        }
        // Broadcast: mirror the reduction back out to `leaves` sinks.
        for &w in widths[..widths.len() - 1].iter().rev() {
            step += 1;
            let cur = self.level(step, w);
            for l in 0..w {
                self.edge(prev + (l / fanout) as u32, cur + l as u32, p);
            }
            prev = cur;
            prev_width = w;
        }
        let _ = prev_width;
    }

    fn random_dag(&mut self, width: usize, steps: usize, max_deps: usize) {
        let p = self.spec.payload_bytes;
        let mut rng = Pcg32::seed_from_u64(self.spec.seed ^ 0xdac0_ffee);
        let mut prev = self.level(0, width);
        for s in 1..=steps as u32 {
            let cur = self.level(s, width);
            for l in 0..width as u32 {
                let dst = cur + l;
                let deps = 1 + rng.range_u64(max_deps.min(width) as u64) as usize;
                // Distinct predecessors: draw lanes, dedup via sort.
                let mut srcs: Vec<u32> = (0..deps)
                    .map(|_| prev + rng.range_u64(width as u64) as u32)
                    .collect();
                srcs.sort_unstable();
                srcs.dedup();
                for src in srcs {
                    // Jitter the communication volume around the knob:
                    // payload ∈ [p/2, 3p/2] (exactly p when p = 0).
                    let payload = if p == 0 {
                        0
                    } else {
                        let half = p / 2;
                        half + rng.range_u64(u64::from(p) + 1) as u32
                    };
                    self.edge(src, dst, payload);
                }
            }
            prev = cur;
        }
    }

    fn sweep(&mut self, width: usize, steps: usize) {
        let p = self.spec.payload_bytes;
        let mut prev = self.level(0, width);
        for s in 1..=steps as u32 {
            let cur = self.level(s, width);
            for l in 0..width as u32 {
                self.edge(prev + l, cur + l, p);
            }
            prev = cur;
        }
    }

    fn finish(mut self) -> TaskGraph {
        self.edges.sort_unstable_by_key(|e| (e.dst, e.src));
        let mut pred_index = vec![0u32; self.nodes.len() + 1];
        for e in &self.edges {
            pred_index[e.dst as usize + 1] += 1;
        }
        for i in 1..pred_index.len() {
            pred_index[i] += pred_index[i - 1];
        }
        TaskGraph {
            spec: self.spec,
            nodes: self.nodes,
            edges: self.edges,
            pred_index,
        }
    }
}

/// The five families at a representative shape of roughly `tasks`
/// nodes — the sweep axis used by the taskbench binary and the storm
/// harness. Shapes are deterministic functions of (`kind index`,
/// `tasks`): no RNG is consumed here.
pub fn all_kinds(tasks: usize) -> Vec<GraphKind> {
    let tasks = tasks.max(4);
    let side = (tasks as f64).sqrt().ceil() as usize;
    // Butterfly: the largest power-of-two width whose full butterfly
    // stays at or under the budget.
    let mut bw = 2usize;
    while bw * 2 * (bw.trailing_zeros() as usize + 2) <= tasks && bw < 1 << 20 {
        bw *= 2;
    }
    vec![
        GraphKind::Stencil1d {
            width: side,
            steps: tasks.div_ceil(side).saturating_sub(1),
        },
        GraphKind::Butterfly { width: bw },
        GraphKind::TreeReduce {
            leaves: (tasks / 2).max(1),
            fanout: 2,
        },
        GraphKind::RandomDag {
            width: side,
            steps: tasks.div_ceil(side).saturating_sub(1),
            max_deps: 3,
        },
        GraphKind::Sweep {
            width: side,
            steps: tasks.div_ceil(side).saturating_sub(1),
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn specs() -> Vec<GraphSpec> {
        all_kinds(64)
            .into_iter()
            .map(|k| GraphSpec::shape(k, 0xbeef).grain(10).payload(16))
            .collect()
    }

    #[test]
    fn every_family_builds_nonempty_leveled_graphs() {
        for spec in specs() {
            let g = spec.build();
            assert!(!g.is_empty(), "{:?}", spec.kind);
            assert!(g.levels() >= 1);
            for e in &g.edges {
                assert!(e.src < e.dst, "{:?}: edge {e:?}", spec.kind);
                let (s, d) = (g.nodes[e.src as usize], g.nodes[e.dst as usize]);
                assert_eq!(s.step + 1, d.step, "{:?}: non-adjacent levels", spec.kind);
            }
            assert!(g.max_level_width() <= g.width_bound(), "{:?}", spec.kind);
        }
    }

    #[test]
    fn preds_are_sorted_and_indexed_consistently() {
        for spec in specs() {
            let g = spec.build();
            let mut seen = 0;
            for id in 0..g.len() as u32 {
                let preds = g.preds(id);
                seen += preds.len();
                assert!(preds.windows(2).all(|w| w[0].src < w[1].src));
                assert!(preds.iter().all(|e| e.dst == id));
            }
            assert_eq!(seen, g.edges.len());
        }
    }

    #[test]
    fn same_spec_same_graph_and_fingerprint() {
        for spec in specs() {
            let a = spec.build();
            let b = spec.build();
            assert_eq!(a, b);
            assert_eq!(a.fingerprint(), b.fingerprint());
        }
    }

    #[test]
    fn random_dag_seed_changes_edges() {
        let kind = GraphKind::RandomDag {
            width: 8,
            steps: 6,
            max_deps: 3,
        };
        let a = GraphSpec::shape(kind, 1).payload(64).build();
        let b = GraphSpec::shape(kind, 2).payload(64).build();
        assert_ne!(a.edges, b.edges);
        assert_ne!(a.fingerprint(), b.fingerprint());
    }

    #[test]
    fn butterfly_width_rounds_to_power_of_two() {
        let g = GraphSpec::shape(GraphKind::Butterfly { width: 5 }, 0).build();
        assert_eq!(g.width_bound(), 8);
        assert_eq!(g.levels(), 4, "log2(8) stages + initial level");
        // Every non-initial node has exactly two predecessors.
        for id in 0..g.len() as u32 {
            let expect = if g.nodes[id as usize].step == 0 { 0 } else { 2 };
            assert_eq!(g.preds(id).len(), expect);
        }
    }

    #[test]
    fn tree_reduces_then_broadcasts() {
        let g = GraphSpec::shape(
            GraphKind::TreeReduce {
                leaves: 8,
                fanout: 2,
            },
            0,
        )
        .build();
        // Widths: 8 4 2 1 2 4 8.
        let mut widths = vec![0usize; g.levels()];
        for n in &g.nodes {
            widths[n.step as usize] += 1;
        }
        assert_eq!(widths, vec![8, 4, 2, 1, 2, 4, 8]);
    }

    #[test]
    fn sweep_has_no_cross_lane_edges() {
        let g = GraphSpec::shape(GraphKind::Sweep { width: 5, steps: 4 }, 0).build();
        for e in &g.edges {
            assert_eq!(g.nodes[e.src as usize].lane, g.nodes[e.dst as usize].lane);
        }
    }

    #[test]
    fn checksum_reference_is_stable_and_knob_sensitive() {
        let kind = GraphKind::RandomDag {
            width: 6,
            steps: 5,
            max_deps: 2,
        };
        let base = GraphSpec::shape(kind, 3).grain(50).payload(32);
        assert_eq!(
            base.build().checksum_reference(),
            base.build().checksum_reference()
        );
        assert_ne!(
            base.build().checksum_reference(),
            base.grain(51).build().checksum_reference()
        );
        assert_ne!(
            base.build().checksum_reference(),
            base.payload(33).build().checksum_reference()
        );
    }

    #[test]
    fn uniform_cov_is_bit_identical_to_legacy() {
        for spec in specs() {
            let explicit = spec.cov(Cov::Uniform).build();
            let implicit = spec.build();
            assert_eq!(explicit, implicit);
            assert_eq!(explicit.fingerprint(), implicit.fingerprint());
            assert_eq!(explicit.checksum_reference(), implicit.checksum_reference());
            for id in 0..explicit.len() as u32 {
                assert_eq!(explicit.spec.node_iters(id), spec.grain_iters);
            }
        }
    }

    #[test]
    fn cov_changes_only_durations_not_structure() {
        for spec in specs() {
            let base = spec.build();
            for cov in [
                Cov::Lognormal { cov_centi: 150 },
                Cov::Bimodal {
                    heavy_pct: 10,
                    ratio: 20,
                },
            ] {
                let dispersed = spec.cov(cov).build();
                // Same nodes, same edges, same payload sizes: the COV
                // knob must not consume any generator randomness.
                assert_eq!(base.nodes, dispersed.nodes, "{cov:?}");
                assert_eq!(base.edges, dispersed.edges, "{cov:?}");
                // But fingerprint and checksum both move: different
                // work is a different workload point.
                assert_ne!(base.fingerprint(), dispersed.fingerprint());
                assert_ne!(
                    base.checksum_reference(),
                    dispersed.checksum_reference(),
                    "{cov:?}"
                );
            }
        }
    }

    #[test]
    fn lognormal_node_iters_are_mean_preserving_and_dispersed() {
        let spec = GraphSpec::shape(
            GraphKind::Sweep {
                width: 64,
                steps: 63,
            },
            42,
        )
        .grain(10_000)
        .cov(Cov::Lognormal { cov_centi: 100 });
        let g = spec.build();
        let iters: Vec<u64> = (0..g.len() as u32).map(|id| spec.node_iters(id)).collect();
        let n = iters.len() as f64;
        let mean = iters.iter().map(|&x| x as f64).sum::<f64>() / n;
        let var = iters
            .iter()
            .map(|&x| (x as f64 - mean).powi(2))
            .sum::<f64>()
            / n;
        let cov = var.sqrt() / mean;
        // E[mult] = 1 and COV = 1.0 by construction; loose band for the
        // ~4k-sample estimate.
        assert!(
            (0.7..=1.4).contains(&(mean / 10_000.0)),
            "mean {mean} drifted from nominal grain"
        );
        assert!((0.6..=1.6).contains(&cov), "COV {cov} far from target 1.0");
        assert!(iters.iter().any(|&x| x != iters[0]), "no dispersion");
    }

    #[test]
    fn bimodal_node_iters_hit_exactly_two_levels() {
        let spec = GraphSpec::shape(
            GraphKind::Sweep {
                width: 32,
                steps: 31,
            },
            7,
        )
        .grain(1_000)
        .cov(Cov::Bimodal {
            heavy_pct: 10,
            ratio: 50,
        });
        let g = spec.build();
        let mut light = 0usize;
        let mut heavy = 0usize;
        for id in 0..g.len() as u32 {
            match spec.node_iters(id) {
                1_000 => light += 1,
                50_000 => heavy += 1,
                other => panic!("unexpected iteration count {other}"),
            }
        }
        assert!(heavy > 0, "no heavy nodes drawn at 10%");
        assert!(light > heavy, "heavy fraction should stay the minority");
    }

    #[test]
    fn all_kinds_respects_task_budget_roughly() {
        for tasks in [4, 16, 100, 1000] {
            for k in all_kinds(tasks) {
                let g = GraphSpec::shape(k, 0).build();
                assert!(
                    g.len() <= tasks * 3 + 4,
                    "{k:?} at budget {tasks} built {} nodes",
                    g.len()
                );
                assert!(g.len() >= tasks.min(4) / 2, "{k:?} too small: {}", g.len());
            }
        }
    }
}
