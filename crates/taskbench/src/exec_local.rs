//! Executor (a): the whole graph on one runtime, via `dataflow`/futures.
//!
//! Node `i`'s future depends on the futures of its predecessors exactly
//! as the graph says; the consuming task expands each incoming edge's
//! payload from the producer's settled value and folds it
//! ([`crate::work`]), so the communication-volume knob costs real memory
//! traffic even in-process. The same spawning core
//! ([`spawn_range`]) is reused by the service executor (spawning through
//! a job's [`TaskContext`]) and by the grain-net executor (spawning each
//! locality's node range, with ghost futures for remote edges).

#![deny(clippy::unwrap_used)]

use crate::graph::{Edge, TaskGraph};
use crate::work;
use grain_metrics::{RunMeta, RunRecord};
use grain_runtime::{when_all, Runtime, SharedFuture, TaskContext, TaskError};
use std::ops::Range;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Join deadline for a healthy run; hitting it means a real hang.
pub const JOIN_TIMEOUT: Duration = Duration::from_secs(120);

/// How one dependency future should be interpreted by the consumer.
#[derive(Clone, Copy)]
enum DepKind {
    /// The future carries the producer's raw value; expand the edge
    /// payload locally (salt, len) and fold it.
    Value { salt: u64, len: u32 },
    /// The future already carries the folded contribution (a ghost from
    /// a remote locality; the bytes traveled as a parcel).
    Contrib,
}

/// Anything that can spawn taskbench node tasks: the runtime itself, or
/// a job's [`TaskContext`] (children then join the job's group).
pub trait Spawner {
    /// Spawn a source task (no dependencies).
    fn spawn_source(&self, f: impl FnOnce() -> u64 + Send + 'static) -> SharedFuture<u64>;
    /// Spawn a dependent task via dataflow.
    fn spawn_dataflow(
        &self,
        deps: &[SharedFuture<u64>],
        f: impl FnOnce(Vec<Arc<u64>>) -> u64 + Send + 'static,
    ) -> SharedFuture<u64>;
}

impl Spawner for Runtime {
    fn spawn_source(&self, f: impl FnOnce() -> u64 + Send + 'static) -> SharedFuture<u64> {
        self.async_call(move |_| f())
    }

    fn spawn_dataflow(
        &self,
        deps: &[SharedFuture<u64>],
        f: impl FnOnce(Vec<Arc<u64>>) -> u64 + Send + 'static,
    ) -> SharedFuture<u64> {
        self.dataflow(deps, move |_, vals| f(vals))
    }
}

impl Spawner for TaskContext<'_> {
    fn spawn_source(&self, f: impl FnOnce() -> u64 + Send + 'static) -> SharedFuture<u64> {
        self.async_call(move |_| f())
    }

    fn spawn_dataflow(
        &self,
        deps: &[SharedFuture<u64>],
        f: impl FnOnce(Vec<Arc<u64>>) -> u64 + Send + 'static,
    ) -> SharedFuture<u64> {
        self.dataflow(deps, move |_, vals| f(vals))
    }
}

/// Spawn the node tasks of `range` (a contiguous id block) through
/// `spawner`. Predecessors inside the range resolve to the just-spawned
/// futures; predecessors outside it are resolved by `ghost`, which must
/// return a future of the edge's **contribution** (folded payload).
/// Returns the value futures of the range's nodes, in id order.
pub(crate) fn spawn_range<S: Spawner>(
    spawner: &S,
    graph: &TaskGraph,
    range: Range<u32>,
    mut ghost: impl FnMut(&Edge) -> SharedFuture<u64>,
) -> Vec<SharedFuture<u64>> {
    let spec = graph.spec;
    let mut futs: Vec<SharedFuture<u64>> = Vec::with_capacity(range.len());
    for id in range.clone() {
        let preds = graph.preds(id);
        let seed = work::node_seed(spec.seed, id);
        let iters = spec.node_iters(id);
        if preds.is_empty() {
            futs.push(spawner.spawn_source(move || work::node_value(seed, iters, [])));
            continue;
        }
        let mut deps: Vec<SharedFuture<u64>> = Vec::with_capacity(preds.len());
        let mut kinds: Vec<DepKind> = Vec::with_capacity(preds.len());
        for e in preds {
            if range.contains(&e.src) {
                deps.push(futs[(e.src - range.start) as usize].clone());
                kinds.push(DepKind::Value {
                    salt: work::edge_salt(spec.seed, e.src, e.dst),
                    len: e.payload,
                });
            } else {
                deps.push(ghost(e));
                kinds.push(DepKind::Contrib);
            }
        }
        futs.push(spawner.spawn_dataflow(&deps, move |vals| {
            let contribs = vals.iter().zip(kinds.iter()).map(|(v, k)| match *k {
                DepKind::Value { salt, len } => work::contrib_from_value(**v, salt, len),
                DepKind::Contrib => **v,
            });
            work::node_value(seed, iters, contribs)
        }));
    }
    futs
}

/// Fold a block of node-value futures into the partial checksum of ids
/// `range`, where `values[i]` belongs to node `range.start + i`.
pub(crate) fn partial_checksum(start: u32, values: &[Arc<u64>]) -> u64 {
    values.iter().enumerate().fold(0u64, |acc, (i, v)| {
        acc.wrapping_add(work::checksum_term(start + i as u32, **v))
    })
}

/// Run the whole graph on `rt` and return its checksum. Blocks the
/// calling (non-worker) thread until the sink settles.
pub fn run_local(rt: &Runtime, graph: &TaskGraph) -> Result<u64, TaskError> {
    let futs = spawn_range(rt, graph, 0..graph.len() as u32, |e| {
        unreachable!("full-range spawn has no ghost edges: {e:?}")
    });
    let all = when_all(&futs);
    let vals = all.wait_timeout(JOIN_TIMEOUT)?;
    Ok(partial_checksum(0, &vals))
}

/// A measured single-runtime run: the checksum plus the paper's raw
/// counter record (Eqs. 1–6 derivable via [`RunRecord`] methods).
#[derive(Debug, Clone)]
pub struct MeasuredRun {
    /// The graph checksum (must equal the reference).
    pub checksum: u64,
    /// Counter record of the measured region.
    pub record: RunRecord,
}

/// Run the graph on `rt` with counters reset at the start of the
/// measured region, and emit the run as a [`RunRecord`]: `nx` carries
/// the grain knob, `np` the width bound, `nt` the level count.
pub fn measure_local(rt: &Runtime, graph: &TaskGraph) -> Result<MeasuredRun, TaskError> {
    rt.wait_idle();
    rt.reset_counters();
    let t0 = Instant::now();
    let checksum = run_local(rt, graph)?;
    rt.wait_idle();
    let wall_s = t0.elapsed().as_secs_f64();
    let meta = RunMeta::workload(
        "host",
        rt.num_workers(),
        graph.spec.grain_iters as usize,
        graph.width_bound(),
        graph.levels(),
    );
    Ok(MeasuredRun {
        checksum,
        record: RunRecord::from_counters(rt, wall_s, meta),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::{all_kinds, GraphSpec};

    #[test]
    fn local_matches_reference_for_every_family() {
        let rt = Runtime::with_workers(2);
        for kind in all_kinds(40) {
            let graph = GraphSpec::shape(kind, 0x51de).grain(25).payload(48).build();
            let sum = run_local(&rt, &graph).expect("run settles");
            assert_eq!(sum, graph.checksum_reference(), "{}", kind.name());
        }
    }

    #[test]
    fn measured_run_counts_every_node_as_a_task() {
        let rt = Runtime::with_workers(2);
        let graph = GraphSpec::shape(crate::graph::GraphKind::Stencil1d { width: 6, steps: 5 }, 9)
            .grain(10)
            .build();
        let m = measure_local(&rt, &graph).expect("run settles");
        assert_eq!(m.checksum, graph.checksum_reference());
        assert_eq!(m.record.tasks, graph.len() as u64);
        assert!(m.record.wall_s > 0.0);
        assert!(m.record.sum_func_ns >= m.record.sum_exec_ns);
        assert_eq!(m.record.meta.np, 6);
        assert_eq!(m.record.meta.nt, 6);
    }

    #[test]
    fn dispersed_grains_match_reference_for_every_family() {
        let rt = Runtime::with_workers(2);
        for kind in all_kinds(40) {
            for cov in [
                crate::graph::Cov::Lognormal { cov_centi: 120 },
                crate::graph::Cov::Bimodal {
                    heavy_pct: 15,
                    ratio: 10,
                },
            ] {
                let graph = GraphSpec::shape(kind, 0xd15e)
                    .grain(25)
                    .payload(32)
                    .cov(cov)
                    .build();
                let sum = run_local(&rt, &graph).expect("run settles");
                assert_eq!(
                    sum,
                    graph.checksum_reference(),
                    "{} with {cov:?}",
                    kind.name()
                );
            }
        }
    }

    #[test]
    fn zero_grain_zero_payload_still_settles() {
        let rt = Runtime::with_workers(1);
        let graph = GraphSpec::shape(
            crate::graph::GraphKind::RandomDag {
                width: 4,
                steps: 4,
                max_deps: 2,
            },
            7,
        )
        .build();
        let sum = run_local(&rt, &graph).expect("run settles");
        assert_eq!(sum, graph.checksum_reference());
    }
}
