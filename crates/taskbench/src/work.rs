//! The deterministic task body: busy-work, edge payloads, and the value
//! algebra that makes every executor produce the same checksum.
//!
//! A taskbench node does three things, all pure functions of the graph
//! description:
//!
//! 1. **Busy-work** ([`busy_work`]): `iters` rounds of a wrapping LCG
//!    whose result feeds the node's value. The iteration count is the
//!    *task-grain knob* — CPU time scales linearly with it (see
//!    [`Calibration`]) while the arithmetic result depends only on the
//!    seed and count, never on timing.
//! 2. **Edge consumption**: each incoming dependency edge carries a
//!    payload of `len` bytes, deterministically expanded from the
//!    producing node's value ([`edge_payload`]) and folded to a 64-bit
//!    *contribution* ([`fold_bytes`]). Whether the bytes were generated
//!    locally (single-runtime executor) or traveled as a parcel
//!    (grain-net executor), the fold is over the same bytes — that is
//!    the bit-identity hinge of the cross-executor test.
//! 3. **Value mixing** ([`node_value`]): the busy-work result and the
//!    contributions (in ascending source-id order, which every executor
//!    preserves) are folded through a strong 64-bit mixer.
//!
//! Nothing here reads the clock except [`Calibration::measure`], which
//! only translates "I want ~50 µs tasks" into an iteration count.

use std::time::{Duration, Instant};

/// SplitMix64 finalizer: a cheap, high-quality 64-bit mixer.
#[inline]
pub fn mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Per-node seed: a function of the graph seed and the node id only.
#[inline]
pub fn node_seed(graph_seed: u64, node: u32) -> u64 {
    mix64(graph_seed ^ (u64::from(node) << 32) ^ 0x7461_736b_6265_6e63) // "taskbench"
}

/// Per-edge salt: a function of the graph seed and both endpoints, so
/// two edges between different node pairs never share a payload stream.
#[inline]
pub fn edge_salt(graph_seed: u64, src: u32, dst: u32) -> u64 {
    mix64(graph_seed ^ (u64::from(src) << 32) ^ u64::from(dst) ^ 0x6564_6765)
}

/// The busy-work kernel: `iters` rounds of a wrapping LCG, result mixed.
/// CPU time is linear in `iters`; the result is timing-independent.
#[inline]
pub fn busy_work(seed: u64, iters: u64) -> u64 {
    let mut x = seed | 1;
    for _ in 0..iters {
        x = std::hint::black_box(
            x.wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407),
        );
    }
    mix64(x)
}

/// Expand an edge payload: `len` bytes drawn from a PCG stream keyed by
/// the producing node's settled value and the edge salt. The consumer
/// folds exactly these bytes, whether it regenerated them in-process or
/// received them over a parcelport link.
pub fn edge_payload(src_value: u64, salt: u64, len: u32) -> Vec<u8> {
    let mut rng = grain_sim::rng::Pcg32::seed_from_u64(mix64(src_value ^ salt));
    let mut out = Vec::with_capacity(len as usize);
    while out.len() < len as usize {
        let word = rng.next_u32().to_le_bytes();
        let take = (len as usize - out.len()).min(4);
        out.extend_from_slice(&word[..take]);
    }
    out
}

/// FNV-1a fold of a payload into a 64-bit contribution.
pub fn fold_bytes(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// One edge's contribution computed producer- or consumer-side from the
/// source value: expand the payload, fold it. The grain-net executor
/// ships the expanded bytes instead and folds on arrival — same result.
pub fn contrib_from_value(src_value: u64, salt: u64, len: u32) -> u64 {
    fold_bytes(&edge_payload(src_value, salt, len))
}

/// A node's value: busy-work folded with every incoming contribution in
/// ascending source-id order.
pub fn node_value(seed: u64, iters: u64, contribs: impl IntoIterator<Item = u64>) -> u64 {
    let mut acc = busy_work(seed, iters);
    for c in contribs {
        acc = mix64(acc ^ c);
    }
    acc
}

/// Fold one node's value into a graph checksum term. Terms are combined
/// with wrapping addition, so per-partition partial sums (the grain-net
/// executor) combine to the same total as a single pass.
#[inline]
pub fn checksum_term(node: u32, value: u64) -> u64 {
    mix64(value ^ mix64(u64::from(node)))
}

/// Host calibration of the busy-work kernel: nanoseconds per iteration,
/// measured the same way the simulator's cost model was calibrated
/// (repeat, take the median) so a grain expressed as a duration maps to
/// an iteration count on this machine.
#[derive(Debug, Clone, Copy)]
pub struct Calibration {
    /// Measured cost of one busy-work iteration, nanoseconds.
    pub ns_per_iter: f64,
}

impl Calibration {
    /// Measure the kernel on the current thread. `reps` timed runs of a
    /// fixed-size spin; the median per-iteration cost is kept. Costs a
    /// few milliseconds.
    pub fn measure(reps: usize) -> Self {
        const ITERS: u64 = 200_000;
        let mut samples: Vec<f64> = (0..reps.max(1))
            .map(|r| {
                let t0 = Instant::now();
                std::hint::black_box(busy_work(0x5eed ^ r as u64, ITERS));
                t0.elapsed().as_secs_f64() * 1e9 / ITERS as f64
            })
            .collect();
        samples.sort_by(f64::total_cmp);
        Self {
            ns_per_iter: samples[samples.len() / 2].max(1e-3),
        }
    }

    /// Quick three-rep measurement for smoke runs.
    pub fn quick() -> Self {
        Self::measure(3)
    }

    /// Iterations whose busy-work lasts roughly `d` on this host
    /// (always at least 1).
    pub fn iters_for(&self, d: Duration) -> u64 {
        ((d.as_secs_f64() * 1e9 / self.ns_per_iter) as u64).max(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn busy_work_is_deterministic_and_seed_sensitive() {
        assert_eq!(busy_work(1, 1000), busy_work(1, 1000));
        assert_ne!(busy_work(1, 1000), busy_work(2, 1000));
        assert_ne!(busy_work(1, 1000), busy_work(1, 1001));
    }

    #[test]
    fn payload_matches_its_fold_shortcut() {
        let bytes = edge_payload(42, 7, 129);
        assert_eq!(bytes.len(), 129);
        assert_eq!(fold_bytes(&bytes), contrib_from_value(42, 7, 129));
        // Zero-length edges still contribute the FNV offset basis.
        assert_eq!(contrib_from_value(42, 7, 0), 0xcbf2_9ce4_8422_2325);
    }

    #[test]
    fn payloads_differ_across_edges_and_values() {
        assert_ne!(edge_payload(1, 7, 32), edge_payload(2, 7, 32));
        assert_ne!(edge_payload(1, 7, 32), edge_payload(1, 8, 32));
    }

    #[test]
    fn node_value_is_order_sensitive_in_contribs() {
        // Executors agree on pred order (ascending src id), so the fold
        // may be order-sensitive; assert it actually is, as a guard
        // against executors accidentally relying on commutativity.
        let a = node_value(9, 10, [1, 2]);
        let b = node_value(9, 10, [2, 1]);
        assert_ne!(a, b);
    }

    #[test]
    fn calibration_yields_usable_iteration_counts() {
        let cal = Calibration::quick();
        assert!(cal.ns_per_iter > 0.0);
        let iters = cal.iters_for(Duration::from_micros(50));
        assert!(iters >= 1);
        // Twice the duration, roughly twice the iterations.
        let double = cal.iters_for(Duration::from_micros(100));
        assert!(double >= iters);
    }
}
