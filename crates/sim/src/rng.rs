//! Seeded pseudo-random numbers — re-exported from `grain-counters`.
//!
//! The PCG32 generator moved into the base crate so the runtime's
//! fault-injection plan ([`grain_counters::FaultPlan`]) and the simulator
//! draw from one implementation. This module keeps the historical
//! `grain_sim::rng::Pcg32` path working.

pub use grain_counters::rng::Pcg32;
