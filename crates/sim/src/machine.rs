//! The machine cost model: turns (task size, concurrency, residency) into
//! virtual nanoseconds, and scheduler operations into their modeled costs.

use crate::rng::Pcg32;
use grain_topology::{NumaTopology, Platform};

/// A platform bound to a worker count, with the derived constants the
/// engine needs on its hot path.
#[derive(Debug, Clone)]
pub struct MachineModel {
    /// The platform being modeled.
    pub platform: Platform,
    /// Worker (core) count of this run.
    pub workers: usize,
    /// NUMA placement of the workers.
    pub numa: NumaTopology,
}

impl MachineModel {
    /// Bind `platform` to `workers` workers.
    pub fn new(platform: &Platform, workers: usize) -> Self {
        assert!(workers >= 1, "need at least one worker");
        assert!(
            workers <= platform.usable_cores,
            "{} workers exceed the {}'s {} usable cores",
            workers,
            platform.name,
            platform.usable_cores
        );
        Self {
            platform: platform.clone(),
            workers,
            numa: platform.numa_topology(workers),
        }
    }

    /// Scheduler-contention multiplier when `contenders` workers are
    /// simultaneously hammering the queue system (busy or searching, not
    /// parked-idle). The fine-grain regime keeps every worker contending;
    /// the coarse-grain regime leaves most workers idle and the queues
    /// quiet.
    pub fn contention(&self, contenders: usize) -> f64 {
        self.platform
            .perf
            .contention(contenders.clamp(1, self.workers))
    }

    /// Execution time of a task of `points` grid points while `active`
    /// tasks (including this one) execute concurrently. `footprint_bytes`
    /// is the workload's concurrent working set (0 = residency unknown).
    /// Jitter is multiplicative log-normal, drawn from `rng`.
    pub fn exec_ns(
        &self,
        points: u64,
        active: usize,
        footprint_bytes: f64,
        rng: &mut Pcg32,
    ) -> f64 {
        let perf = &self.platform.perf;
        let resident = self.is_resident(active, footprint_bytes);
        let per_point = perf.per_point_ns(active, self.workers, resident);
        let base = perf.task_fixed_ns + points as f64 * per_point;
        base * self.jitter(rng)
    }

    /// Cache-residency test: does each active core's share of the
    /// footprint fit in its private L2 plus its share of the socket LLC?
    pub fn is_resident(&self, active: usize, footprint_bytes: f64) -> bool {
        if footprint_bytes <= 0.0 {
            return false;
        }
        let active = active.max(1);
        let per_core = footprint_bytes / active as f64;
        let active_per_socket = active.div_ceil(self.platform.sockets.max(1));
        per_core <= self.platform.cache.share_per_core(active_per_socket as u64) as f64
    }

    /// Multiplicative log-normal jitter factor.
    pub fn jitter(&self, rng: &mut Pcg32) -> f64 {
        let sigma = self.platform.perf.jitter_sigma;
        if sigma <= 0.0 {
            return 1.0;
        }
        // Log-normal via the generator's Box-Muller draw; Pcg32 is
        // deterministic per seed.
        (sigma * rng.next_gaussian()).exp()
    }

    /// Modeled cost of one queue probe under `contenders`-way contention.
    pub fn probe_ns(&self, contenders: usize) -> f64 {
        self.platform.perf.queue_probe_ns * self.contention(contenders)
    }

    /// Modeled cost of a staged→pending conversion.
    pub fn convert_ns(&self, contenders: usize) -> f64 {
        self.platform.perf.convert_ns * self.contention(contenders)
    }

    /// Modeled fixed dispatch/retire cost per executed task.
    pub fn dispatch_ns(&self, contenders: usize) -> f64 {
        self.platform.perf.dispatch_ns * self.contention(contenders)
    }

    /// Modeled cost of spawning one task descriptor.
    pub fn spawn_ns(&self, contenders: usize) -> f64 {
        self.platform.perf.spawn_ns * self.contention(contenders)
    }

    /// Extra cost of a steal from worker `from` as seen by worker `to`.
    pub fn steal_extra_ns(&self, from: usize, to: usize, contenders: usize) -> f64 {
        if self.numa.same_domain(from, to) {
            self.platform.perf.steal_local_extra_ns * self.contention(contenders)
        } else {
            self.platform.perf.steal_remote_extra_ns * self.contention(contenders)
        }
    }

    /// Cost of one full *failed* search sweep: probing every queue in the
    /// six-step order and finding nothing.
    pub fn failed_sweep_ns(&self, contenders: usize) -> f64 {
        // own pending + own staged + each peer's staged + pending.
        let probes = 2 + 2 * (self.workers - 1);
        probes as f64 * self.probe_ns(contenders)
    }

    /// Pending-queue probes in one failed sweep.
    pub fn pending_probes_per_sweep(&self) -> u64 {
        self.workers as u64
    }

    /// Staged-queue probes in one failed sweep.
    pub fn staged_probes_per_sweep(&self) -> u64 {
        self.workers as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use grain_topology::presets;

    fn hw(workers: usize) -> MachineModel {
        MachineModel::new(&presets::haswell(), workers)
    }

    #[test]
    fn exec_time_scales_with_points() {
        let m = hw(1);
        let mut rng = Pcg32::seed_from_u64(1);
        let small = m.exec_ns(1_000, 1, 0.0, &mut rng);
        let big = m.exec_ns(100_000, 1, 0.0, &mut rng);
        assert!(big > 50.0 * small / 2.0, "roughly linear in points");
    }

    #[test]
    fn zero_point_task_still_costs_fixed_time() {
        let m = hw(1);
        let mut rng = Pcg32::seed_from_u64(1);
        let t = m.exec_ns(0, 1, 0.0, &mut rng);
        let fixed = m.platform.perf.task_fixed_ns;
        // Only jitter separates the cost from the fixed term.
        assert!((fixed * 0.7..fixed * 1.4).contains(&t), "t = {t}");
    }

    #[test]
    fn contention_slows_tasks() {
        let m = hw(28);
        let mut rng = Pcg32::seed_from_u64(1);
        let alone = m.exec_ns(100_000, 1, 0.0, &mut rng);
        let crowded = m.exec_ns(100_000, 28, 0.0, &mut rng);
        assert!(crowded > 2.0 * alone);
    }

    #[test]
    fn residency_requires_fit() {
        let m = hw(4);
        // 1 MB footprint over 4 cores: 256 KB each, fits L2+LLC share.
        assert!(m.is_resident(4, 1024.0 * 1024.0));
        // 800 MB over 4 cores: 200 MB each, never fits.
        assert!(!m.is_resident(4, 800e6));
        // Unknown footprint: conservative.
        assert!(!m.is_resident(4, 0.0));
    }

    #[test]
    fn jitter_is_deterministic_per_seed() {
        let m = hw(1);
        let mut a = Pcg32::seed_from_u64(7);
        let mut b = Pcg32::seed_from_u64(7);
        for _ in 0..10 {
            assert_eq!(m.jitter(&mut a), m.jitter(&mut b));
        }
    }

    #[test]
    fn jitter_centers_near_one() {
        let m = hw(1);
        let mut rng = Pcg32::seed_from_u64(3);
        let n = 4000;
        let mean: f64 = (0..n).map(|_| m.jitter(&mut rng)).sum::<f64>() / n as f64;
        assert!((mean - 1.0).abs() < 0.05, "mean jitter {mean}");
    }

    #[test]
    fn steal_cost_depends_on_distance() {
        let m = hw(28); // two sockets of 14
        let local = m.steal_extra_ns(1, 0, 4);
        let remote = m.steal_extra_ns(20, 0, 4);
        assert!(remote > local);
    }

    #[test]
    fn scheduler_costs_scale_with_contenders() {
        let m = hw(28);
        assert!(m.probe_ns(28) > m.probe_ns(1));
        assert!(m.convert_ns(28) > m.convert_ns(1));
        assert!(m.dispatch_ns(28) > m.dispatch_ns(1));
        assert!(m.spawn_ns(28) > m.spawn_ns(1));
        // Contenders are clamped to the worker count.
        assert_eq!(m.contention(100), m.contention(28));
        assert_eq!(m.contention(0), m.contention(1));
    }

    #[test]
    #[should_panic(expected = "usable cores")]
    fn too_many_workers_rejected() {
        let _ = MachineModel::new(&presets::sandy_bridge(), 17);
    }
}
