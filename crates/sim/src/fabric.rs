//! The simulated network fabric: an event-driven link layer under the
//! parcelport.
//!
//! A [`NetFabric`] owns an explicit **virtual clock** (nanoseconds, only
//! ever advanced to the timestamp of the event being processed) and a
//! single binary heap of pending events, drained by one pump thread.
//! Localities inject encoded frames through [`NetFabric::submit`]; the
//! fabric consults its [`NetPlan`] for the frame's fate (drop,
//! duplicate, delay, reorder), models per-directed-link bandwidth and
//! queue caps, applies partitions, and finally hands surviving frames
//! to the destination's registered sink — the same
//! `(sender, bytes)`-shaped callback the real parcelport feeds.
//!
//! ## Ledger discipline
//!
//! Every injected **parcel** ends in exactly one terminal bucket, so at
//! quiescence the books must balance:
//!
//! ```text
//! injected + duplicated ==
//!     delivered + dropped_chaos + tail_dropped + blackholed + severed
//! ```
//!
//! (`duplicated` counts the *extra* copies the fabric manufactures;
//! `severed` counts frames destroyed because their pair was severed —
//! the fabric-side twin of the locality books' `in_flight_at_sever`.)
//! Control frames (handshake, liveness pings) ride reliably — no chaos
//! verdicts — but still respect partitions and severs; they are
//! tracked by their own two counters and never enter the parcel
//! ledger, mirroring the `/parcels/*` counting discipline.
//!
//! ## Partitions
//!
//! A partition between `a` and `b` cuts both directions. In
//! [`PartitionMode::Hold`] parcels reaching the cut are parked and
//! flushed (with fresh latency) on heal; in [`PartitionMode::Drop`]
//! they are destroyed (`blackholed`). Control frames are always
//! destroyed at a cut — that is what lets a liveness monitor on either
//! side detect the blackhole. Partitions apply at *delivery* time, so
//! frames already in flight when the window opens are caught by it,
//! exactly like a cable pulled mid-transfer.
//!
//! ## Pacing
//!
//! By default the pump is free-running: events are processed as fast
//! as the host allows and the virtual clock jumps event-to-event
//! (hours of simulated traffic in milliseconds). With
//! [`NetFabric::paced`] the pump sleeps until each event's virtual
//! timestamp scaled by `real_per_virtual` has elapsed on the host
//! clock — that is what makes the timed [`PartitionWindow`]s of a plan
//! meaningful relative to application progress on a 1-core host.

#![deny(clippy::unwrap_used)]

use crate::netplan::{NetPlan, PartitionMode, Verdict};
use grain_counters::registry::RawView;
use grain_counters::sync::{Condvar, Mutex};
use grain_counters::{DerivedCounter, RawCounter, Registry, RegistryError, Unit};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Weak};
use std::time::{Duration, Instant};

/// Destination callback: `(sender locality, frame bytes)` — the same
/// shape as the parcelport's `FrameHandler`.
pub type SimSink = Arc<dyn Fn(usize, Vec<u8>) + Send + Sync>;

/// Fixed one-way latency of control frames, in virtual ns. Control
/// traffic is not subject to chaos verdicts, bandwidth, or queue caps.
pub const CONTROL_LATENCY_NS: u64 = 1_000;

/// How the fabric classifies one submitted frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SimFrameClass {
    /// A `Call`/`Reply` parcel with its replay-stable identity (see
    /// [`crate::netplan::frame_id`]); subject to every chaos verdict
    /// and tracked by the parcel ledger.
    Parcel {
        /// Identity-derived key feeding the verdict stream.
        id: u64,
    },
    /// Handshake / teardown / liveness traffic: delivered reliably
    /// (except across partitions and severs), outside the ledger.
    Control,
}

/// What [`NetFabric::submit`] did with the frame — the sender-side
/// counters (`/parcels/count/dropped|duplicated`) are bumped from this.
#[derive(Debug, Clone, Copy, Default)]
pub struct SubmitOutcome {
    /// The frame was destroyed immediately (chaos drop, tail drop, or
    /// severed pair) and will never reach the destination.
    pub dropped: bool,
    /// A second copy was scheduled.
    pub duplicated: bool,
}

/// Immutable snapshot of the fabric's parcel ledger plus transient
/// gauges. See the module docs for the conservation identity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct LedgerSnapshot {
    /// Parcels submitted by senders.
    pub injected: u64,
    /// Extra copies manufactured by duplication verdicts.
    pub duplicated: u64,
    /// Parcels handed to a destination sink.
    pub delivered: u64,
    /// Parcels destroyed by a drop verdict.
    pub dropped_chaos: u64,
    /// Parcels destroyed by a full link queue.
    pub tail_dropped: u64,
    /// Parcels destroyed at a [`PartitionMode::Drop`] cut.
    pub blackholed: u64,
    /// Parcels destroyed because their pair was severed while they
    /// were in flight (the fabric's `in_flight_at_sever`).
    pub severed: u64,
    /// Control frames handed to a sink.
    pub control_delivered: u64,
    /// Control frames destroyed (partition, sever, missing sink).
    pub control_dropped: u64,
    /// Partition windows opened so far.
    pub partitions_opened: u64,
    /// Partition windows healed so far.
    pub partitions_healed: u64,
    /// Parcels currently scheduled in the event heap (gauge).
    pub in_flight: u64,
    /// Parcels currently parked at a Hold cut (gauge).
    pub held: u64,
}

impl LedgerSnapshot {
    /// True when every injected parcel is accounted for in exactly one
    /// terminal bucket — only meaningful at quiescence (`in_flight`
    /// and `held` both zero).
    pub fn conserved(&self) -> bool {
        self.in_flight == 0
            && self.held == 0
            && self.injected + self.duplicated
                == self.delivered
                    + self.dropped_chaos
                    + self.tail_dropped
                    + self.blackholed
                    + self.severed
    }
}

/// Shared raw counters behind the snapshot.
struct Ledger {
    injected: Arc<RawCounter>,
    duplicated: Arc<RawCounter>,
    delivered: Arc<RawCounter>,
    dropped_chaos: Arc<RawCounter>,
    tail_dropped: Arc<RawCounter>,
    blackholed: Arc<RawCounter>,
    severed: Arc<RawCounter>,
    control_delivered: Arc<RawCounter>,
    control_dropped: Arc<RawCounter>,
    partitions_opened: Arc<RawCounter>,
    partitions_healed: Arc<RawCounter>,
}

impl Ledger {
    fn new() -> Self {
        Self {
            injected: Arc::new(RawCounter::new()),
            duplicated: Arc::new(RawCounter::new()),
            delivered: Arc::new(RawCounter::new()),
            dropped_chaos: Arc::new(RawCounter::new()),
            tail_dropped: Arc::new(RawCounter::new()),
            blackholed: Arc::new(RawCounter::new()),
            severed: Arc::new(RawCounter::new()),
            control_delivered: Arc::new(RawCounter::new()),
            control_dropped: Arc::new(RawCounter::new()),
            partitions_opened: Arc::new(RawCounter::new()),
            partitions_healed: Arc::new(RawCounter::new()),
        }
    }
}

/// One frame in flight (or parked at a Hold cut).
struct FlightFrame {
    src: usize,
    dst: usize,
    bytes: Vec<u8>,
    parcel: bool,
}

enum EventKind {
    Deliver(FlightFrame),
    PartitionStart {
        a: usize,
        b: usize,
        mode: PartitionMode,
    },
    PartitionEnd {
        a: usize,
        b: usize,
    },
}

struct Event {
    at_ns: u64,
    seq: u64,
    kind: EventKind,
}

impl PartialEq for Event {
    fn eq(&self, other: &Self) -> bool {
        self.at_ns == other.at_ns && self.seq == other.seq
    }
}
impl Eq for Event {}
impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Event {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Ties broken by submission sequence: FIFO among equal stamps.
        (self.at_ns, self.seq).cmp(&(other.at_ns, other.seq))
    }
}

/// Per-directed-pair link state.
#[derive(Default)]
struct PairState {
    severed: bool,
    /// Virtual time the link's serializer is busy until (bandwidth).
    next_free_ns: u64,
    /// Parcels of this pair currently in the event heap.
    in_heap: usize,
    /// Parcels parked by an active Hold partition, in arrival order.
    held: Vec<FlightFrame>,
}

struct FabricState {
    heap: BinaryHeap<Reverse<Event>>,
    next_seq: u64,
    sinks: HashMap<usize, SimSink>,
    pairs: HashMap<(usize, usize), PairState>,
    /// Active partitions, keyed by normalized `(min, max)` pair.
    partitions: HashMap<(usize, usize), PartitionMode>,
    /// Parcels currently in the heap, across all pairs (gauge).
    parcels_in_heap: u64,
    /// Parcels currently held, across all pairs (gauge).
    parcels_held: u64,
    paused: bool,
    /// An event is being processed outside the lock right now.
    processing: bool,
    stopped: bool,
}

/// The simulated network fabric. See the module docs.
pub struct NetFabric {
    plan: NetPlan,
    state: Mutex<FabricState>,
    /// Pump wake-ups (new events, resume, stop).
    wake: Condvar,
    /// Quiescence waiters (heap drained).
    idle: Condvar,
    ledger: Ledger,
    clock_ns: AtomicU64,
    stopped: AtomicBool,
    /// Real seconds per virtual second; `None` = free-running.
    pace: Option<f64>,
    started_at: Instant,
}

impl NetFabric {
    /// Build a free-running fabric for `plan` and start its pump
    /// thread. Timed partition windows in the plan are pre-scheduled.
    pub fn new(plan: NetPlan) -> Arc<Self> {
        Self::build(plan, None)
    }

    /// Build a *paced* fabric: virtual time advances no faster than
    /// `real_per_virtual` host-seconds per virtual second, making the
    /// plan's timed partition windows meaningful against wall-clock
    /// application progress.
    pub fn paced(plan: NetPlan, real_per_virtual: f64) -> Arc<Self> {
        Self::build(plan, Some(real_per_virtual))
    }

    fn build(plan: NetPlan, pace: Option<f64>) -> Arc<Self> {
        let mut heap = BinaryHeap::new();
        let mut next_seq = 0u64;
        for w in &plan.partitions {
            heap.push(Reverse(Event {
                at_ns: w.start_ns,
                seq: next_seq,
                kind: EventKind::PartitionStart {
                    a: w.a,
                    b: w.b,
                    mode: w.mode,
                },
            }));
            next_seq += 1;
            heap.push(Reverse(Event {
                at_ns: w.end_ns,
                seq: next_seq,
                kind: EventKind::PartitionEnd { a: w.a, b: w.b },
            }));
            next_seq += 1;
        }
        let fabric = Arc::new(Self {
            plan,
            state: Mutex::new(FabricState {
                heap,
                next_seq,
                sinks: HashMap::new(),
                pairs: HashMap::new(),
                partitions: HashMap::new(),
                parcels_in_heap: 0,
                parcels_held: 0,
                paused: false,
                processing: false,
                stopped: false,
            }),
            wake: Condvar::new(),
            idle: Condvar::new(),
            ledger: Ledger::new(),
            clock_ns: AtomicU64::new(0),
            stopped: AtomicBool::new(false),
            pace,
            started_at: Instant::now(),
        });
        {
            let fabric = Arc::clone(&fabric);
            std::thread::Builder::new()
                .name("grain-sim-fabric".to_string())
                .spawn(move || fabric.pump())
                .expect("failed to spawn fabric pump thread");
        }
        fabric
    }

    /// The plan this fabric executes.
    pub fn plan(&self) -> &NetPlan {
        &self.plan
    }

    /// Current virtual time, ns.
    pub fn now_ns(&self) -> u64 {
        self.clock_ns.load(Ordering::Acquire)
    }

    /// Register (or replace) the delivery sink of locality `dst`.
    pub fn register_sink(&self, dst: usize, sink: SimSink) {
        self.state.lock().sinks.insert(dst, sink);
    }

    /// Inject one encoded frame onto the directed link `src → dst`.
    /// Never blocks on network progress: verdicts and scheduling happen
    /// inline, delivery happens on the pump thread.
    pub fn submit(
        &self,
        src: usize,
        dst: usize,
        bytes: Vec<u8>,
        class: SimFrameClass,
    ) -> SubmitOutcome {
        let mut outcome = SubmitOutcome::default();
        let now = self.now_ns();
        let mut st = self.state.lock();
        let severed = st.stopped || st.pairs.get(&(src, dst)).is_some_and(|p| p.severed);
        match class {
            SimFrameClass::Control => {
                if severed {
                    self.ledger.control_dropped.incr();
                    outcome.dropped = true;
                    return outcome;
                }
                let at_ns = now + CONTROL_LATENCY_NS;
                self.schedule_frame(&mut st, src, dst, bytes, false, at_ns);
            }
            SimFrameClass::Parcel { id } => {
                self.ledger.injected.incr();
                if severed {
                    self.ledger.severed.incr();
                    outcome.dropped = true;
                    return outcome;
                }
                let fate = self.plan.fate(src, dst, id);
                if fate.verdict == Verdict::Drop {
                    self.ledger.dropped_chaos.incr();
                    outcome.dropped = true;
                    return outcome;
                }
                if let Some(cap) = self.plan.link_queue_cap {
                    let in_heap = st.pairs.get(&(src, dst)).map_or(0, |p| p.in_heap);
                    if in_heap >= cap {
                        self.ledger.tail_dropped.incr();
                        outcome.dropped = true;
                        return outcome;
                    }
                }
                // Bandwidth: the link serializes one frame at a time.
                let pair = st.pairs.entry((src, dst)).or_default();
                let tx_ns = |n: usize| match self.plan.bandwidth_bytes_per_sec {
                    Some(bps) if bps > 0 => (n as u128 * 1_000_000_000 / bps as u128) as u64,
                    _ => 0,
                };
                let start = now.max(pair.next_free_ns);
                pair.next_free_ns = start + tx_ns(bytes.len());
                let sent_at = pair.next_free_ns;
                let arrive = sent_at + self.plan.base_latency_ns + fate.jitter_ns + fate.extra_ns;
                if fate.verdict == Verdict::Duplicate {
                    // The echo reserves its own slot right behind the
                    // original, then takes its own delay draws.
                    let dup_len = bytes.len();
                    self.schedule_frame(&mut st, src, dst, bytes.clone(), true, arrive);
                    let pair = st.pairs.entry((src, dst)).or_default();
                    pair.next_free_ns += tx_ns(dup_len);
                    let dup_arrive = pair.next_free_ns
                        + self.plan.base_latency_ns
                        + fate.dup_jitter_ns
                        + fate.dup_extra_ns;
                    self.schedule_frame(&mut st, src, dst, bytes, true, dup_arrive);
                    self.ledger.duplicated.incr();
                    outcome.duplicated = true;
                } else {
                    self.schedule_frame(&mut st, src, dst, bytes, true, arrive);
                }
            }
        }
        self.wake.notify_all();
        outcome
    }

    fn schedule_frame(
        &self,
        st: &mut FabricState,
        src: usize,
        dst: usize,
        bytes: Vec<u8>,
        parcel: bool,
        at_ns: u64,
    ) {
        let seq = st.next_seq;
        st.next_seq += 1;
        if parcel {
            st.pairs.entry((src, dst)).or_default().in_heap += 1;
            st.parcels_in_heap += 1;
        }
        st.heap.push(Reverse(Event {
            at_ns,
            seq,
            kind: EventKind::Deliver(FlightFrame {
                src,
                dst,
                bytes,
                parcel,
            }),
        }));
    }

    /// Stop processing events (submissions still enqueue). Used by
    /// deterministic choreography: pause, inject a known set of frames,
    /// partition or kill, then [`NetFabric::resume`].
    pub fn pause(&self) {
        self.state.lock().paused = true;
    }

    /// Resume event processing after [`NetFabric::pause`].
    pub fn resume(&self) {
        self.state.lock().paused = false;
        self.wake.notify_all();
    }

    /// Open a partition between `a` and `b` right now (both
    /// directions). Idempotent while already cut.
    pub fn partition_now(&self, a: usize, b: usize, mode: PartitionMode) {
        let mut st = self.state.lock();
        self.open_partition(&mut st, a, b, mode);
    }

    /// Heal the `a`–`b` partition right now, flushing held frames with
    /// fresh latency. No-op if the pair is not cut.
    pub fn heal_now(&self, a: usize, b: usize) {
        let mut st = self.state.lock();
        self.close_partition(&mut st, a, b);
        self.wake.notify_all();
    }

    fn open_partition(&self, st: &mut FabricState, a: usize, b: usize, mode: PartitionMode) {
        let key = (a.min(b), a.max(b));
        if st.partitions.insert(key, mode).is_none() {
            self.ledger.partitions_opened.incr();
        }
    }

    fn close_partition(&self, st: &mut FabricState, a: usize, b: usize) {
        let key = (a.min(b), a.max(b));
        if st.partitions.remove(&key).is_none() {
            return;
        }
        self.ledger.partitions_healed.incr();
        let now = self.now_ns();
        for (src, dst) in [(a, b), (b, a)] {
            let held = match st.pairs.get_mut(&(src, dst)) {
                Some(p) => std::mem::take(&mut p.held),
                None => continue,
            };
            for (i, f) in held.into_iter().enumerate() {
                st.parcels_held -= u64::from(f.parcel);
                let jitter = self
                    .plan
                    .flush_jitter_ns(src, dst, now ^ ((i as u64) << 20));
                let at_ns = now + self.plan.base_latency_ns + jitter;
                let parcel = f.parcel;
                self.schedule_frame(st, src, dst, f.bytes, parcel, at_ns);
            }
        }
    }

    /// Destroy the `src ↔ dst` pair in both directions: in-flight and
    /// held parcels are counted into the `severed` bucket as they
    /// surface, and all future submissions on the pair die instantly.
    /// This is what a [`crate::fabric`]-backed link calls from its
    /// sever path.
    pub fn sever_pair(&self, a: usize, b: usize) {
        let mut st = self.state.lock();
        for (src, dst) in [(a, b), (b, a)] {
            let pair = st.pairs.entry((src, dst)).or_default();
            if pair.severed {
                continue;
            }
            pair.severed = true;
            let held = std::mem::take(&mut pair.held);
            for f in held {
                st.parcels_held -= 1;
                debug_assert!(f.parcel, "held frames are always parcels");
                self.ledger.severed.incr();
            }
        }
    }

    /// Stop the pump thread and destroy remaining in-flight frames
    /// (counted as severed / control-dropped). Idempotent.
    pub fn stop(&self) {
        if self.stopped.swap(true, Ordering::SeqCst) {
            return;
        }
        let mut st = self.state.lock();
        st.stopped = true;
        let drained: Vec<Event> = std::mem::take(&mut st.heap)
            .into_iter()
            .map(|Reverse(e)| e)
            .collect();
        for ev in drained {
            if let EventKind::Deliver(f) = ev.kind {
                self.account_destroyed(&f, DestroyCause::Severed);
            }
        }
        st.parcels_in_heap = 0;
        let mut released_held = 0u64;
        for pair in st.pairs.values_mut() {
            pair.in_heap = 0;
            let held = std::mem::take(&mut pair.held);
            for f in held {
                released_held += u64::from(f.parcel);
                self.ledger.severed.incr();
            }
        }
        st.parcels_held -= released_held;
        self.wake.notify_all();
        self.idle.notify_all();
    }

    /// Block until the event heap is fully drained (nothing in flight,
    /// nothing mid-delivery) or `timeout` elapses. Returns `true` on
    /// quiescence. Held frames at an open Hold cut do **not** count as
    /// in flight — use [`NetFabric::wait_quiescent`] to also require
    /// them gone.
    pub fn wait_drained(&self, timeout: Duration) -> bool {
        self.wait_idle_where(timeout, |st| st.heap.is_empty() && !st.processing)
    }

    /// Block until nothing is in flight **and** nothing is held at a
    /// cut. Returns `false` on timeout.
    pub fn wait_quiescent(&self, timeout: Duration) -> bool {
        self.wait_idle_where(timeout, |st| {
            st.heap.is_empty() && !st.processing && st.parcels_held == 0
        })
    }

    fn wait_idle_where(&self, timeout: Duration, pred: impl Fn(&FabricState) -> bool) -> bool {
        let deadline = Instant::now() + timeout;
        let mut st = self.state.lock();
        loop {
            if pred(&st) {
                return true;
            }
            let now = Instant::now();
            if now >= deadline {
                return false;
            }
            let _ = self.idle.wait_for(&mut st, deadline - now);
        }
    }

    /// Snapshot the ledger and gauges.
    pub fn ledger(&self) -> LedgerSnapshot {
        let (in_flight, held) = {
            let st = self.state.lock();
            (st.parcels_in_heap, st.parcels_held)
        };
        LedgerSnapshot {
            injected: self.ledger.injected.get(),
            duplicated: self.ledger.duplicated.get(),
            delivered: self.ledger.delivered.get(),
            dropped_chaos: self.ledger.dropped_chaos.get(),
            tail_dropped: self.ledger.tail_dropped.get(),
            blackholed: self.ledger.blackholed.get(),
            severed: self.ledger.severed.get(),
            control_delivered: self.ledger.control_delivered.get(),
            control_dropped: self.ledger.control_dropped.get(),
            partitions_opened: self.ledger.partitions_opened.get(),
            partitions_healed: self.ledger.partitions_healed.get(),
            in_flight,
            held,
        }
    }

    /// Register the `/net{fabric/total}/…` counter family in
    /// `registry`.
    pub fn register(self: &Arc<Self>, registry: &Registry) -> Result<(), RegistryError> {
        let t = "fabric/total";
        let raws: [(&str, &Arc<RawCounter>); 9] = [
            ("frames/injected", &self.ledger.injected),
            ("frames/duplicated", &self.ledger.duplicated),
            ("frames/delivered", &self.ledger.delivered),
            ("frames/dropped-chaos", &self.ledger.dropped_chaos),
            ("frames/tail-dropped", &self.ledger.tail_dropped),
            ("frames/blackholed", &self.ledger.blackholed),
            ("frames/in-flight-at-sever", &self.ledger.severed),
            ("partitions/opened", &self.ledger.partitions_opened),
            ("partitions/healed", &self.ledger.partitions_healed),
        ];
        for (name, ctr) in raws {
            registry.register(
                &format!("/net{{{t}}}/{name}"),
                RawView::new(Arc::clone(ctr), Unit::Count),
            )?;
        }
        let w = Arc::downgrade(self);
        registry.register(
            &format!("/net{{{t}}}/frames/held"),
            DerivedCounter::new(Unit::Count, move || {
                w.upgrade().map_or(0.0, |f| f.ledger().held as f64)
            }),
        )?;
        let w: Weak<Self> = Arc::downgrade(self);
        registry.register(
            &format!("/net{{{t}}}/partitions/active"),
            DerivedCounter::new(Unit::Count, move || {
                w.upgrade()
                    .map_or(0.0, |f| f.state.lock().partitions.len() as f64)
            }),
        )?;
        Ok(())
    }

    /// The pump: pop events in virtual-time order, advance the clock,
    /// apply partitions/severs at delivery time, call sinks outside the
    /// state lock (a delivery may re-enter `submit`).
    fn pump(self: Arc<Self>) {
        loop {
            // Phase 1: wait for, then claim, the next due event.
            let ev = {
                let mut st = self.state.lock();
                loop {
                    if st.stopped {
                        self.idle.notify_all();
                        return;
                    }
                    if st.paused {
                        self.idle.notify_all();
                        self.wake.wait(&mut st);
                        continue;
                    }
                    let head_at = match st.heap.peek() {
                        Some(Reverse(head)) => head.at_ns,
                        None => {
                            self.idle.notify_all();
                            self.wake.wait(&mut st);
                            continue;
                        }
                    };
                    if let Some(scale) = self.pace {
                        let due =
                            self.started_at + Duration::from_secs_f64(head_at as f64 * scale / 1e9);
                        let now = Instant::now();
                        if now < due {
                            let _ = self.wake.wait_for(&mut st, due - now);
                            continue;
                        }
                    }
                    let Some(Reverse(ev)) = st.heap.pop() else {
                        continue;
                    };
                    if let EventKind::Deliver(f) = &ev.kind {
                        if f.parcel {
                            st.parcels_in_heap -= 1;
                            if let Some(p) = st.pairs.get_mut(&(f.src, f.dst)) {
                                p.in_heap -= 1;
                            }
                        }
                    }
                    st.processing = true;
                    break ev;
                }
            };
            // Phase 2: advance the virtual clock (monotonically — a
            // heal-flush may schedule below an older stamp).
            self.clock_ns.fetch_max(ev.at_ns, Ordering::AcqRel);

            // Phase 3: act.
            let mut delivery: Option<(SimSink, FlightFrame)> = None;
            {
                let mut st = self.state.lock();
                match ev.kind {
                    EventKind::PartitionStart { a, b, mode } => {
                        self.open_partition(&mut st, a, b, mode)
                    }
                    EventKind::PartitionEnd { a, b } => self.close_partition(&mut st, a, b),
                    EventKind::Deliver(f) => {
                        let severed = st.pairs.get(&(f.src, f.dst)).is_some_and(|p| p.severed);
                        let cut = st
                            .partitions
                            .get(&(f.src.min(f.dst), f.src.max(f.dst)))
                            .copied();
                        if severed {
                            self.account_destroyed(&f, DestroyCause::Severed);
                        } else if let Some(mode) = cut {
                            match (mode, f.parcel) {
                                (PartitionMode::Hold, true) => {
                                    st.parcels_held += 1;
                                    st.pairs.entry((f.src, f.dst)).or_default().held.push(f);
                                }
                                _ => self.account_destroyed(&f, DestroyCause::Blackholed),
                            }
                        } else {
                            match st.sinks.get(&f.dst) {
                                Some(sink) => delivery = Some((Arc::clone(sink), f)),
                                None => self.account_destroyed(&f, DestroyCause::Severed),
                            }
                        }
                    }
                }
            }
            if let Some((sink, f)) = delivery {
                if f.parcel {
                    self.ledger.delivered.incr();
                } else {
                    self.ledger.control_delivered.incr();
                }
                sink(f.src, f.bytes);
            }
            let mut st = self.state.lock();
            st.processing = false;
            if st.heap.is_empty() {
                self.idle.notify_all();
            }
        }
    }

    fn account_destroyed(&self, f: &FlightFrame, cause: DestroyCause) {
        if f.parcel {
            match cause {
                DestroyCause::Severed => self.ledger.severed.incr(),
                DestroyCause::Blackholed => self.ledger.blackholed.incr(),
            }
        } else {
            self.ledger.control_dropped.incr();
        }
    }
}

#[derive(Clone, Copy)]
enum DestroyCause {
    Severed,
    Blackholed,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::netplan::{frame_id, NetPlan, FRAME_KIND_CALL};
    use std::sync::mpsc;

    fn collector() -> (SimSink, mpsc::Receiver<(usize, Vec<u8>)>) {
        let (tx, rx) = mpsc::channel();
        let tx = Mutex::new(tx);
        (
            Arc::new(move |from, bytes| {
                let _ = tx.lock().send((from, bytes));
            }),
            rx,
        )
    }

    fn pid(i: u64) -> SimFrameClass {
        SimFrameClass::Parcel {
            id: frame_id(FRAME_KIND_CALL, 0, i),
        }
    }

    #[test]
    fn clean_fabric_delivers_in_order_with_ledger_balance() {
        let fabric = NetFabric::new(NetPlan::clean(1));
        let (sink, rx) = collector();
        fabric.register_sink(1, sink);
        for i in 0..20u64 {
            fabric.submit(0, 1, vec![i as u8], pid(i));
        }
        let got: Vec<u8> = (0..20)
            .map(|_| rx.recv_timeout(Duration::from_secs(5)).expect("delivery").1[0])
            .collect();
        assert_eq!(got, (0..20u8).collect::<Vec<_>>(), "clean = FIFO");
        assert!(fabric.wait_quiescent(Duration::from_secs(5)));
        let l = fabric.ledger();
        assert_eq!(l.injected, 20);
        assert_eq!(l.delivered, 20);
        assert!(l.conserved(), "{l:?}");
        fabric.stop();
    }

    #[test]
    fn chaotic_fabric_conserves_parcels() {
        let plan = NetPlan::clean(99)
            .drop(0.2)
            .duplicate(0.2)
            .reorder(0.5, 40_000)
            .latency(5_000, 10_000);
        let fabric = NetFabric::new(plan);
        let (sink, rx) = collector();
        fabric.register_sink(1, sink);
        let n = 500u64;
        for i in 0..n {
            fabric.submit(0, 1, vec![0u8; 16], pid(i));
        }
        assert!(fabric.wait_quiescent(Duration::from_secs(10)));
        let l = fabric.ledger();
        assert_eq!(l.injected, n);
        assert!(l.dropped_chaos > 0, "{l:?}");
        assert!(l.duplicated > 0, "{l:?}");
        assert!(l.conserved(), "{l:?}");
        let mut seen = 0u64;
        while rx.try_recv().is_ok() {
            seen += 1;
        }
        assert_eq!(seen, l.delivered);
        fabric.stop();
    }

    #[test]
    fn same_seed_same_delivery_multiset() {
        let run = || {
            let plan = NetPlan::clean(7)
                .drop(0.3)
                .duplicate(0.2)
                .latency(1_000, 5_000);
            let fabric = NetFabric::new(plan);
            let (sink, rx) = collector();
            fabric.register_sink(1, sink);
            for i in 0..200u64 {
                fabric.submit(0, 1, vec![(i % 251) as u8], pid(i));
            }
            assert!(fabric.wait_quiescent(Duration::from_secs(10)));
            let l = fabric.ledger();
            fabric.stop();
            let mut got: Vec<u8> = std::iter::from_fn(|| rx.try_recv().ok())
                .map(|(_, b)| b[0])
                .collect();
            got.sort_unstable();
            (l, got)
        };
        let (la, a) = run();
        let (lb, b) = run();
        assert_eq!(la, lb);
        assert_eq!(a, b);
    }

    #[test]
    fn hold_partition_parks_then_heals() {
        let fabric = NetFabric::new(NetPlan::clean(3));
        let (sink, rx) = collector();
        fabric.register_sink(1, sink);
        fabric.partition_now(0, 1, PartitionMode::Hold);
        for i in 0..5u64 {
            fabric.submit(0, 1, vec![i as u8], pid(i));
        }
        assert!(fabric.wait_drained(Duration::from_secs(5)));
        let l = fabric.ledger();
        assert_eq!(l.held, 5, "{l:?}");
        assert_eq!(l.delivered, 0);
        assert!(rx.try_recv().is_err());
        fabric.heal_now(0, 1);
        for _ in 0..5 {
            rx.recv_timeout(Duration::from_secs(5)).expect("flushed");
        }
        assert!(fabric.wait_quiescent(Duration::from_secs(5)));
        let l = fabric.ledger();
        assert_eq!(l.delivered, 5);
        assert_eq!(l.partitions_opened, 1);
        assert_eq!(l.partitions_healed, 1);
        assert!(l.conserved(), "{l:?}");
        fabric.stop();
    }

    #[test]
    fn drop_partition_blackholes_parcels_and_control() {
        let fabric = NetFabric::new(NetPlan::clean(3));
        let (sink, rx) = collector();
        fabric.register_sink(1, sink);
        fabric.partition_now(0, 1, PartitionMode::Drop);
        fabric.submit(0, 1, vec![1], pid(0));
        fabric.submit(0, 1, vec![2], SimFrameClass::Control);
        assert!(fabric.wait_quiescent(Duration::from_secs(5)));
        let l = fabric.ledger();
        assert_eq!(l.blackholed, 1, "{l:?}");
        assert_eq!(l.control_dropped, 1, "{l:?}");
        assert!(rx.try_recv().is_err());
        assert!(l.conserved(), "{l:?}");
        fabric.stop();
    }

    #[test]
    fn sever_counts_in_flight_and_rejects_new_frames() {
        let fabric = NetFabric::new(NetPlan::clean(5));
        let (sink, _rx) = collector();
        fabric.register_sink(1, sink);
        fabric.pause();
        for i in 0..4u64 {
            fabric.submit(0, 1, vec![0], pid(i));
        }
        fabric.sever_pair(0, 1);
        fabric.resume();
        assert!(fabric.wait_quiescent(Duration::from_secs(5)));
        let after = fabric.submit(0, 1, vec![0], pid(9));
        assert!(after.dropped);
        let l = fabric.ledger();
        assert_eq!(l.severed, 5, "4 in flight + 1 post-sever: {l:?}");
        assert_eq!(l.delivered, 0);
        assert!(l.conserved(), "{l:?}");
        fabric.stop();
    }

    #[test]
    fn virtual_clock_advances_with_events() {
        let fabric = NetFabric::new(NetPlan::clean(1).latency(50_000, 0));
        let (sink, rx) = collector();
        fabric.register_sink(1, sink);
        assert_eq!(fabric.now_ns(), 0);
        fabric.submit(0, 1, vec![0], pid(0));
        rx.recv_timeout(Duration::from_secs(5)).expect("delivered");
        assert!(fabric.wait_quiescent(Duration::from_secs(5)));
        assert!(fabric.now_ns() >= 50_000);
        fabric.stop();
    }

    #[test]
    fn queue_cap_tail_drops() {
        let fabric = NetFabric::new(NetPlan::clean(2).queue_cap(2));
        let (sink, _rx) = collector();
        fabric.register_sink(1, sink);
        fabric.pause();
        let mut dropped = 0;
        for i in 0..10u64 {
            if fabric.submit(0, 1, vec![0], pid(i)).dropped {
                dropped += 1;
            }
        }
        fabric.resume();
        assert!(fabric.wait_quiescent(Duration::from_secs(5)));
        let l = fabric.ledger();
        assert_eq!(l.tail_dropped, dropped);
        assert_eq!(l.tail_dropped, 8, "{l:?}");
        assert!(l.conserved(), "{l:?}");
        fabric.stop();
    }
}
