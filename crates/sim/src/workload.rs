//! Simulated workloads: task DAGs with per-task work sizes.

/// One task in a simulated workload.
#[derive(Debug, Clone)]
pub struct SimTaskSpec {
    /// Work size in grid points (drives the kernel-time model). A task of
    /// zero points still pays the platform's fixed per-task cost.
    pub points: u64,
    /// Indices of tasks that must complete before this one is spawned
    /// (dataflow semantics: the task does not exist, even as a staged
    /// descriptor, until its inputs are done).
    pub deps: Vec<u32>,
}

/// A complete task DAG plus the memory-footprint hint the cache model
/// needs.
#[derive(Debug, Clone, Default)]
pub struct SimWorkload {
    /// The tasks. Indices into this vector are the dependency ids.
    pub tasks: Vec<SimTaskSpec>,
    /// Bytes of distinct data the whole *concurrent working phase* of the
    /// workload touches (for the stencil: grid bytes per time step). Used
    /// by the residency model; 0 disables residency (conservative).
    pub footprint_bytes: f64,
}

impl SimWorkload {
    /// An empty workload.
    pub fn new() -> Self {
        Self::default()
    }

    /// `n` independent tasks of `points` each.
    pub fn independent(n: usize, points: u64) -> Self {
        Self {
            tasks: (0..n)
                .map(|_| SimTaskSpec {
                    points,
                    deps: Vec::new(),
                })
                .collect(),
            footprint_bytes: 0.0,
        }
    }

    /// A sequential chain of `n` tasks of `points` each (worst-case
    /// dependency structure; useful in tests and the starvation bench).
    pub fn chain(n: usize, points: u64) -> Self {
        Self {
            tasks: (0..n)
                .map(|i| SimTaskSpec {
                    points,
                    deps: if i == 0 { vec![] } else { vec![i as u32 - 1] },
                })
                .collect(),
            footprint_bytes: 0.0,
        }
    }

    /// A binary fork-join tree of `depth` levels: 2^depth leaves of
    /// `leaf_points` each, joined pairwise by zero-work join tasks —
    /// the classic recursive-decomposition DAG (e.g. the Fibonacci
    /// example), useful as a second workload family beside the stencil.
    pub fn fork_join(depth: u32, leaf_points: u64) -> Self {
        let mut wl = Self::new();
        // Build bottom-up: leaves first, then join layers.
        let mut layer: Vec<u32> = (0..(1usize << depth))
            .map(|_| wl.push(leaf_points, Vec::new()))
            .collect();
        while layer.len() > 1 {
            layer = layer
                .chunks(2)
                .map(|pair| wl.push(0, pair.to_vec()))
                .collect();
        }
        wl
    }

    /// A layered random DAG: `layers` layers of `width` tasks each; every
    /// task past layer 0 depends on 1–3 uniformly-chosen tasks of the
    /// previous layer. Deterministic for a given `seed`. Models irregular
    /// applications (the "graph applications" class of §I-A).
    pub fn layered_random(layers: usize, width: usize, points: u64, seed: u64) -> Self {
        assert!(layers > 0 && width > 0);
        // xorshift64* — deterministic, dependency-free. The multiply
        // spreads nearby seeds apart before the `| 1` nonzero guard.
        let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
        let mut next = move || {
            state ^= state >> 12;
            state ^= state << 25;
            state ^= state >> 27;
            state = state.wrapping_mul(0x2545_F491_4F6C_DD1D);
            state
        };
        let mut wl = Self::new();
        for layer in 0..layers {
            for _ in 0..width {
                let deps = if layer == 0 {
                    Vec::new()
                } else {
                    let base = ((layer - 1) * width) as u32;
                    let k = 1 + (next() % 3) as usize;
                    (0..k)
                        .map(|_| base + (next() % width as u64) as u32)
                        .collect()
                };
                wl.push(points, deps);
            }
        }
        wl
    }

    /// A 2-D wavefront: `rows × cols` tiles, tile (i, j) depending on its
    /// top and left neighbours — the dependency topology of blocked
    /// dynamic-programming kernels (sequence alignment, triangular
    /// solves). Parallelism grows and shrinks along the anti-diagonals,
    /// unlike the stencil's constant-width steps.
    pub fn wavefront(rows: usize, cols: usize, points: u64) -> Self {
        assert!(rows > 0 && cols > 0);
        let mut wl = Self::new();
        for i in 0..rows {
            for j in 0..cols {
                let mut deps = Vec::new();
                if i > 0 {
                    deps.push(((i - 1) * cols + j) as u32);
                }
                if j > 0 {
                    deps.push((i * cols + j - 1) as u32);
                }
                wl.push(points, deps);
            }
        }
        wl
    }

    /// Append a task; returns its index for use as a dependency.
    pub fn push(&mut self, points: u64, deps: Vec<u32>) -> u32 {
        let idx = self.tasks.len() as u32;
        self.tasks.push(SimTaskSpec { points, deps });
        idx
    }

    /// Number of tasks.
    pub fn len(&self) -> usize {
        self.tasks.len()
    }

    /// True if there are no tasks.
    pub fn is_empty(&self) -> bool {
        self.tasks.is_empty()
    }

    /// Total grid points across all tasks.
    pub fn total_points(&self) -> u64 {
        self.tasks.iter().map(|t| t.points).sum()
    }

    /// Validate the DAG: every dependency index in range, no task
    /// depending on itself or a later task (the builders in this project
    /// only create forward edges, which also guarantees acyclicity).
    pub fn validate(&self) -> Result<(), String> {
        for (i, t) in self.tasks.iter().enumerate() {
            for &d in &t.deps {
                if d as usize >= self.tasks.len() {
                    return Err(format!("task {i} depends on missing task {d}"));
                }
                if d as usize >= i {
                    return Err(format!(
                        "task {i} depends on task {d}, which is not earlier in the DAG"
                    ));
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn independent_has_no_deps() {
        let w = SimWorkload::independent(5, 100);
        assert_eq!(w.len(), 5);
        assert!(w.tasks.iter().all(|t| t.deps.is_empty()));
        assert_eq!(w.total_points(), 500);
        w.validate().unwrap();
    }

    #[test]
    fn chain_links_consecutively() {
        let w = SimWorkload::chain(4, 10);
        assert_eq!(w.tasks[0].deps, Vec::<u32>::new());
        assert_eq!(w.tasks[3].deps, vec![2]);
        w.validate().unwrap();
    }

    #[test]
    fn push_returns_usable_indices() {
        let mut w = SimWorkload::new();
        let a = w.push(10, vec![]);
        let b = w.push(20, vec![a]);
        let _c = w.push(30, vec![a, b]);
        assert_eq!(w.len(), 3);
        w.validate().unwrap();
    }

    #[test]
    fn fork_join_shape() {
        let wl = SimWorkload::fork_join(3, 100);
        // 8 leaves + 4 + 2 + 1 joins.
        assert_eq!(wl.len(), 15);
        wl.validate().unwrap();
        assert_eq!(wl.total_points(), 800);
        // The root is the last task and joins two subtrees.
        assert_eq!(wl.tasks.last().unwrap().deps.len(), 2);
    }

    #[test]
    fn fork_join_depth_zero_is_one_leaf() {
        let wl = SimWorkload::fork_join(0, 7);
        assert_eq!(wl.len(), 1);
        assert!(wl.tasks[0].deps.is_empty());
    }

    #[test]
    fn layered_random_is_valid_and_deterministic() {
        let a = SimWorkload::layered_random(5, 16, 1_000, 42);
        let b = SimWorkload::layered_random(5, 16, 1_000, 42);
        a.validate().unwrap();
        assert_eq!(a.len(), 80);
        assert_eq!(a.tasks.len(), b.tasks.len());
        for (x, y) in a.tasks.iter().zip(&b.tasks) {
            assert_eq!(x.deps, y.deps);
        }
        let c = SimWorkload::layered_random(5, 16, 1_000, 43);
        assert!(a.tasks.iter().zip(&c.tasks).any(|(x, y)| x.deps != y.deps));
    }

    #[test]
    fn layered_random_layer0_has_no_deps() {
        let wl = SimWorkload::layered_random(3, 8, 10, 7);
        for t in &wl.tasks[..8] {
            assert!(t.deps.is_empty());
        }
        for t in &wl.tasks[8..] {
            assert!(!t.deps.is_empty());
        }
    }

    #[test]
    fn wavefront_dependencies() {
        let wl = SimWorkload::wavefront(3, 4, 10);
        assert_eq!(wl.len(), 12);
        wl.validate().unwrap();
        assert!(wl.tasks[0].deps.is_empty(), "corner tile has no deps");
        assert_eq!(wl.tasks[1].deps, vec![0], "top row depends left only");
        assert_eq!(wl.tasks[4].deps, vec![0], "left col depends up only");
        assert_eq!(wl.tasks[5].deps, vec![1, 4], "interior depends up+left");
    }

    #[test]
    fn wavefront_parallelism_is_diagonal_bounded() {
        use crate::engine::{simulate, SimConfig};
        use grain_topology::presets;
        // A 1×N wavefront is a chain; an N×N one exposes up to N-way
        // parallelism in the middle.
        let chain = SimWorkload::wavefront(1, 64, 50_000);
        let square = SimWorkload::wavefront(8, 8, 50_000);
        let p = presets::haswell();
        let cfg = SimConfig::default();
        let t_chain = simulate(&p, 8, &chain, &cfg).wall_ns;
        let t_square = simulate(&p, 8, &square, &cfg).wall_ns;
        assert!(
            t_square < t_chain * 0.6,
            "square wavefront must parallelize: {t_square} vs chain {t_chain}"
        );
    }

    #[test]
    fn validate_rejects_out_of_range() {
        let mut w = SimWorkload::new();
        w.tasks.push(SimTaskSpec {
            points: 1,
            deps: vec![9],
        });
        assert!(w.validate().is_err());
    }

    #[test]
    fn validate_rejects_backward_or_self_edges() {
        let mut w = SimWorkload::new();
        w.tasks.push(SimTaskSpec {
            points: 1,
            deps: vec![0],
        });
        assert!(w.validate().is_err(), "self-dependency");

        let mut w = SimWorkload::new();
        w.tasks.push(SimTaskSpec {
            points: 1,
            deps: vec![1],
        });
        w.tasks.push(SimTaskSpec {
            points: 1,
            deps: vec![],
        });
        assert!(w.validate().is_err(), "forward (cyclic-capable) edge");
    }
}
