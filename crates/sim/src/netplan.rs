//! Seeded network-chaos plans: per-frame verdicts for the simulated
//! fabric.
//!
//! A [`NetPlan`] is to the network what a
//! [`grain_counters::FaultPlan`] is to the scheduler and a
//! [`StormPlan`](crate::storm::StormPlan) is to the service: a pure,
//! deterministic *description* of misbehaviour. The fabric
//! ([`crate::fabric::NetFabric`]) consults it once per injected parcel
//! and gets back a [`FrameFate`]: drop it, duplicate it, delay it,
//! push it back inside a reorder window — all decided by a PCG32 stream
//! derived from the frame's *identity*, never from arrival order.
//!
//! ## Why identity-keyed verdicts
//!
//! Real threads race: two localities' writer threads reach the fabric
//! in nondeterministic order. If verdicts were drawn from one shared
//! stream (or from per-link frame indices), a replay would hand
//! different frames different fates depending on that race. Keying the
//! stream on `(plan seed, src, dst, frame identity)` makes the fate a
//! pure function of *which frame this is*: a `Call` is identified by
//! `(origin, call_id)`, a `Reply` by `(destination, call_id)`, both
//! deterministic because call ids are assigned in program order on the
//! issuing locality. Equal seeds therefore yield equal chaos no matter
//! how the threads interleave.
//!
//! ## Stream-space split (satellite contract with `storm.rs`)
//!
//! [`crate::storm::StormPlan::generate`] seeds tenant `idx`'s stream as
//! `seed ^ (0x9e37_79b9_7f4a_7c15 · (idx + 1))` — a *multiplicative*
//! family over small indices. NetPlan streams are seeded as
//! `splitmix64(seed ^ NET_STREAM_SALT ^ pair ^ id)`: the
//! [`NET_STREAM_SALT`] constant plus a full `splitmix64` finalizer puts
//! them in a disjoint region of the 2⁶⁴ seed space, so attaching
//! network chaos to an existing storm consumes **no randomness** from
//! any tenant stream. The tenant side of the contract is frozen by the
//! `recorded_storm_seed_is_bit_identical` regression in
//! [`crate::storm`], a fingerprint of the plan a recorded seed produced
//! when the split was established.

#![deny(clippy::unwrap_used)]

use crate::rng::Pcg32;

/// Salt folded into every NetPlan stream seed, separating network
/// chaos from the storm tenants' multiplicative seed family.
pub const NET_STREAM_SALT: u64 = 0x6e65_7463_6861_6f73; // "netchaos"

/// Identity kind of a `Call` frame (keyed by origin locality).
pub const FRAME_KIND_CALL: u64 = 1;
/// Identity kind of a `Reply` frame (keyed by destination locality).
pub const FRAME_KIND_REPLY: u64 = 2;

/// SplitMix64 finalizer: a cheap, well-mixed bijection on `u64`.
pub fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Stable identity of a parcel frame, independent of delivery order:
/// `kind` is [`FRAME_KIND_CALL`] or [`FRAME_KIND_REPLY`], `who` the
/// locality that owns the `call_id` namespace (the call's origin; a
/// reply's destination), `call_id` the correlation id itself.
pub fn frame_id(kind: u64, who: u64, call_id: u64) -> u64 {
    splitmix64(kind ^ splitmix64(who ^ splitmix64(call_id)))
}

/// How a partitioned pair treats frames that reach the cut.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PartitionMode {
    /// Frames are parked and flushed (with fresh latency) on heal —
    /// a transient routing outage.
    Hold,
    /// Frames are silently destroyed — a blackhole. Control frames die
    /// too, so liveness monitors can detect the cut.
    Drop,
}

/// A timed partition between localities `a` and `b` (both directions),
/// active on the virtual clock during `[start_ns, end_ns)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PartitionWindow {
    /// One side of the cut.
    pub a: usize,
    /// The other side.
    pub b: usize,
    /// Virtual time the partition opens, in nanoseconds.
    pub start_ns: u64,
    /// Virtual time it heals, in nanoseconds.
    pub end_ns: u64,
    /// What happens to frames that reach the cut.
    pub mode: PartitionMode,
}

/// The chaos verdict class for one frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// Deliver one copy.
    Deliver,
    /// Destroy the frame (counted as a chaos drop).
    Drop,
    /// Deliver two copies (the receiver's dedup window must suppress
    /// the second).
    Duplicate,
}

/// Everything the fabric needs to schedule one frame: the verdict plus
/// the delay draws for the primary copy and (if duplicated) the echo.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FrameFate {
    /// Drop / deliver / duplicate.
    pub verdict: Verdict,
    /// Uniform latency jitter of the primary copy, in ns.
    pub jitter_ns: u64,
    /// Extra reorder push-back of the primary copy, in ns (0 when the
    /// frame was not selected for reordering).
    pub extra_ns: u64,
    /// Jitter of the duplicate copy.
    pub dup_jitter_ns: u64,
    /// Reorder push-back of the duplicate copy.
    pub dup_extra_ns: u64,
}

/// A deterministic, seeded description of network misbehaviour.
///
/// All probabilities are independent per frame; `drop_p + dup_p` must
/// stay ≤ 1 (they partition one uniform draw). A default-constructed
/// plan ([`NetPlan::clean`]) delivers everything with a fixed base
/// latency — the simulated fabric then behaves like a slow, reliable
/// loopback.
#[derive(Debug, Clone)]
pub struct NetPlan {
    /// Master seed; equal seeds give bit-identical chaos.
    pub seed: u64,
    /// Probability a parcel is destroyed in flight.
    pub drop_p: f64,
    /// Probability a parcel is delivered twice.
    pub dup_p: f64,
    /// Probability a parcel is pushed back by up to
    /// `reorder_window_ns`, letting later frames overtake it.
    pub reorder_p: f64,
    /// Maximum reorder push-back, in ns.
    pub reorder_window_ns: u64,
    /// Base one-way latency of every link, in ns.
    pub base_latency_ns: u64,
    /// Maximum uniform latency jitter, in ns.
    pub jitter_ns: u64,
    /// Link bandwidth in bytes per virtual second; `None` = infinite
    /// (no serialization delay).
    pub bandwidth_bytes_per_sec: Option<u64>,
    /// Per-directed-link in-flight frame cap; submissions beyond it are
    /// tail-dropped. `None` = unbounded.
    pub link_queue_cap: Option<usize>,
    /// Timed partition windows (virtual clock). Only meaningful when
    /// the fabric runs paced; manual partitions work in any mode.
    pub partitions: Vec<PartitionWindow>,
}

impl NetPlan {
    /// A lossless plan: fixed 10 µs base latency, nothing else.
    pub fn clean(seed: u64) -> Self {
        Self {
            seed,
            drop_p: 0.0,
            dup_p: 0.0,
            reorder_p: 0.0,
            reorder_window_ns: 0,
            base_latency_ns: 10_000,
            jitter_ns: 0,
            bandwidth_bytes_per_sec: None,
            link_queue_cap: None,
            partitions: Vec::new(),
        }
    }

    /// Set the chaos drop probability.
    pub fn drop(mut self, p: f64) -> Self {
        self.drop_p = p;
        self
    }

    /// Set the duplication probability.
    pub fn duplicate(mut self, p: f64) -> Self {
        self.dup_p = p;
        self
    }

    /// Set the reorder probability and window.
    pub fn reorder(mut self, p: f64, window_ns: u64) -> Self {
        self.reorder_p = p;
        self.reorder_window_ns = window_ns;
        self
    }

    /// Set base latency and jitter bound.
    pub fn latency(mut self, base_ns: u64, jitter_ns: u64) -> Self {
        self.base_latency_ns = base_ns;
        self.jitter_ns = jitter_ns;
        self
    }

    /// Bound link bandwidth (bytes per virtual second).
    pub fn bandwidth(mut self, bytes_per_sec: u64) -> Self {
        self.bandwidth_bytes_per_sec = Some(bytes_per_sec);
        self
    }

    /// Bound the per-directed-link in-flight frame count.
    pub fn queue_cap(mut self, cap: usize) -> Self {
        self.link_queue_cap = Some(cap);
        self
    }

    /// Add a timed partition window.
    pub fn partition(mut self, w: PartitionWindow) -> Self {
        self.partitions.push(w);
        self
    }

    /// The PCG stream deciding frame `id`'s fate on link `src → dst`.
    /// See the module docs for the seed-space split contract.
    fn stream(&self, src: usize, dst: usize, id: u64) -> Pcg32 {
        let pair = splitmix64((src as u64) << 32 | (dst as u64 & 0xffff_ffff));
        Pcg32::seed_from_u64(splitmix64(self.seed ^ NET_STREAM_SALT ^ pair ^ id))
    }

    /// Decide the fate of frame `id` on link `src → dst`. A pure
    /// function of `(self.seed, src, dst, id)`: the same frame gets the
    /// same fate on every replay regardless of thread interleaving,
    /// because each frame owns a whole stream — no draw in one frame's
    /// fate can shift another frame's.
    pub fn fate(&self, src: usize, dst: usize, id: u64) -> FrameFate {
        let mut rng = self.stream(src, dst, id);
        let u = rng.next_f64();
        let verdict = if u < self.drop_p {
            Verdict::Drop
        } else if u < self.drop_p + self.dup_p {
            Verdict::Duplicate
        } else {
            Verdict::Deliver
        };
        let draw_delay = |rng: &mut Pcg32| {
            let jitter = if self.jitter_ns > 0 {
                rng.range_u64(self.jitter_ns + 1)
            } else {
                0
            };
            let reordered = rng.next_f64() < self.reorder_p;
            let extra = if reordered && self.reorder_window_ns > 0 {
                rng.range_u64(self.reorder_window_ns + 1)
            } else {
                0
            };
            (jitter, extra)
        };
        let (jitter_ns, extra_ns) = draw_delay(&mut rng);
        let (dup_jitter_ns, dup_extra_ns) = draw_delay(&mut rng);
        FrameFate {
            verdict,
            jitter_ns,
            extra_ns,
            dup_jitter_ns,
            dup_extra_ns,
        }
    }

    /// A stable 64-bit digest of the *whole* plan — seed and every
    /// chaos knob, including partition windows. Two plans with equal
    /// fingerprints produce identical fabric weather; bench snapshots
    /// record it (alongside the bare seed) so result rows stay joinable
    /// to the exact plan they ran under even when the plan's shape
    /// changes between runs with the same seed. FNV-1a over a canonical
    /// field serialization; floats contribute their IEEE bit patterns.
    pub fn fingerprint(&self) -> u64 {
        const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
        let mut h = FNV_OFFSET;
        let mut eat = |v: u64| {
            for byte in v.to_le_bytes() {
                h ^= u64::from(byte);
                h = h.wrapping_mul(FNV_PRIME);
            }
        };
        eat(self.seed);
        eat(self.drop_p.to_bits());
        eat(self.dup_p.to_bits());
        eat(self.reorder_p.to_bits());
        eat(self.reorder_window_ns);
        eat(self.base_latency_ns);
        eat(self.jitter_ns);
        eat(self.bandwidth_bytes_per_sec.map_or(0, |b| b ^ 1));
        eat(self.link_queue_cap.map_or(0, |c| c as u64 ^ 1));
        eat(self.partitions.len() as u64);
        for w in &self.partitions {
            eat(w.a as u64);
            eat(w.b as u64);
            eat(w.start_ns);
            eat(w.end_ns);
            eat(match w.mode {
                PartitionMode::Drop => 0,
                PartitionMode::Hold => 1,
            });
        }
        h
    }

    /// Jitter applied when a frame parked by a [`PartitionMode::Hold`]
    /// window is flushed at heal time. A distinct derivation (the id is
    /// re-mixed with a flush salt) so the flush delay is independent of
    /// the original fate draws but still replay-stable.
    pub fn flush_jitter_ns(&self, src: usize, dst: usize, id: u64) -> u64 {
        if self.jitter_ns == 0 {
            return 0;
        }
        let mut rng = self.stream(src, dst, splitmix64(id ^ 0x0066_6c75_7368)); // "flush"
        rng.range_u64(self.jitter_ns + 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chaotic() -> NetPlan {
        NetPlan::clean(42)
            .drop(0.2)
            .duplicate(0.2)
            .reorder(0.5, 50_000)
            .latency(10_000, 20_000)
    }

    #[test]
    fn fingerprint_is_stable_and_knob_sensitive() {
        let a = chaotic();
        assert_eq!(a.fingerprint(), chaotic().fingerprint());
        // Every knob must move the digest: same seed, different weather
        // must stay distinguishable in recorded bench rows.
        assert_ne!(a.fingerprint(), NetPlan::clean(42).fingerprint());
        assert_ne!(a.fingerprint(), chaotic().drop(0.3).fingerprint());
        assert_ne!(a.fingerprint(), chaotic().bandwidth(1 << 20).fingerprint());
        assert_ne!(a.fingerprint(), chaotic().queue_cap(8).fingerprint());
        let parted = chaotic().partition(PartitionWindow {
            a: 0,
            b: 1,
            start_ns: 5,
            end_ns: 10,
            mode: PartitionMode::Hold,
        });
        assert_ne!(a.fingerprint(), parted.fingerprint());
        let dropped = chaotic().partition(PartitionWindow {
            a: 0,
            b: 1,
            start_ns: 5,
            end_ns: 10,
            mode: PartitionMode::Drop,
        });
        assert_ne!(parted.fingerprint(), dropped.fingerprint());
        // A seed change alone also moves it.
        let reseeded = NetPlan {
            seed: 43,
            ..chaotic()
        };
        assert_ne!(a.fingerprint(), reseeded.fingerprint());
    }

    #[test]
    fn fates_are_deterministic_in_identity() {
        let plan = chaotic();
        for id in 0..100u64 {
            let fid = frame_id(FRAME_KIND_CALL, 3, id);
            assert_eq!(plan.fate(0, 1, fid), plan.fate(0, 1, fid));
        }
    }

    #[test]
    fn fates_differ_across_identities_and_links() {
        let plan = chaotic();
        let fates: Vec<FrameFate> = (0..64)
            .map(|i| plan.fate(0, 1, frame_id(FRAME_KIND_CALL, 0, i)))
            .collect();
        assert!(
            fates.windows(2).any(|w| w[0] != w[1]),
            "64 frames with identical fates"
        );
        // Same call id, different namespace kinds → different identity.
        assert_ne!(
            frame_id(FRAME_KIND_CALL, 0, 1),
            frame_id(FRAME_KIND_REPLY, 0, 1)
        );
        // Same identity on different links draws independently.
        assert!(
            (0..64).any(|i| {
                let fid = frame_id(FRAME_KIND_CALL, 0, i);
                plan.fate(0, 1, fid) != plan.fate(1, 0, fid)
            }),
            "links share a stream"
        );
    }

    #[test]
    fn verdict_probabilities_are_respected_in_aggregate() {
        let plan = NetPlan::clean(7).drop(0.3).duplicate(0.2);
        let n = 4000;
        let (mut drops, mut dups) = (0, 0);
        for i in 0..n {
            match plan.fate(0, 1, frame_id(FRAME_KIND_CALL, 0, i)).verdict {
                Verdict::Drop => drops += 1,
                Verdict::Duplicate => dups += 1,
                Verdict::Deliver => {}
            }
        }
        let drop_rate = drops as f64 / n as f64;
        let dup_rate = dups as f64 / n as f64;
        assert!((0.25..0.35).contains(&drop_rate), "drop rate {drop_rate}");
        assert!((0.15..0.25).contains(&dup_rate), "dup rate {dup_rate}");
    }

    #[test]
    fn certain_drop_drops_everything_and_clean_drops_nothing() {
        let all = NetPlan::clean(1).drop(1.0);
        let none = NetPlan::clean(1);
        for i in 0..100 {
            let fid = frame_id(FRAME_KIND_REPLY, 2, i);
            assert_eq!(all.fate(0, 1, fid).verdict, Verdict::Drop);
            assert_eq!(none.fate(0, 1, fid).verdict, Verdict::Deliver);
        }
    }

    #[test]
    fn jitter_stays_within_bounds() {
        let plan = chaotic();
        for i in 0..200 {
            let f = plan.fate(0, 1, frame_id(FRAME_KIND_CALL, 0, i));
            assert!(f.jitter_ns <= plan.jitter_ns);
            assert!(f.extra_ns <= plan.reorder_window_ns);
            assert!(plan.flush_jitter_ns(0, 1, i) <= plan.jitter_ns);
        }
    }
}
