//! The virtual-time discrete-event engine.
//!
//! Semantics mirror `grain-runtime`'s worker loop and the Priority
//! Local-FIFO search order, with costs supplied by [`MachineModel`]:
//!
//! * a worker searches: own pending → own staged (convert → own pending →
//!   redo) → same-NUMA staged → same-NUMA pending → remote staged →
//!   remote pending; every probe costs time and bumps access/miss
//!   counters;
//! * task completion releases dependents, which are *spawned* (staged) on
//!   the completing worker — dataflow locality — at a per-spawn cost;
//! * `Σt_func` covers everything between dispatches (search, conversion,
//!   steal, dispatch, execution, starvation); `Σt_exec` covers only the
//!   kernel time, so Eqs. 1–3 behave exactly as in the native runtime;
//! * idle workers model HPX's "keeps looking for work": their idle gaps
//!   are charged to `Σt_func` and their failed search sweeps (with a
//!   backoff factor) to the queue access/miss counters, in closed form
//!   rather than event-by-event.

use crate::machine::MachineModel;
use crate::report::SimReport;
use crate::rng::Pcg32;
use crate::workload::SimWorkload;
use grain_counters::{FaultAction, FaultPlan, ThreadCounters};
use grain_topology::Platform;
use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};

/// Engine knobs (the machine itself comes from
/// [`grain_topology::Platform`]).
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// RNG seed for the jitter model; runs with equal seeds are
    /// bit-identical.
    pub seed: u64,
    /// Idle workers re-sweep the queues at `failed_sweep × idle_backoff`
    /// intervals (models HPX's idle backoff; affects only the access/miss
    /// counter volume attributed to starvation, not timing).
    pub idle_backoff: f64,
    /// Sigma of the per-run log-normal machine-state factor (frequency,
    /// thermal and OS noise shared by every task of one run). This is
    /// what gives repeated samples the few-percent COV the paper reports
    /// (§IV); per-task jitter alone would average out.
    pub run_jitter_sigma: f64,
    /// Deterministic fault injection: each dispatch consults the plan
    /// with the task id and its attempt number, mirroring the native
    /// runtime's `fault-inject` hooks. An injected panic faults the
    /// attempt (charged like a real phase, counted in
    /// `SimReport::faulted`) and the task is retried on the same worker
    /// — the plan's per-attempt verdicts make the whole run, retries
    /// included, bit-identical for equal seeds.
    pub fault_plan: Option<FaultPlan>,
}

impl Default for SimConfig {
    fn default() -> Self {
        Self {
            seed: 0x5eed,
            idle_backoff: 30.0,
            run_jitter_sigma: 0.02,
            fault_plan: None,
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum EventKind {
    /// The worker should search for work now.
    Wake(u32),
    /// The worker finishes its current task now.
    Done {
        worker: u32,
        task: u32,
        /// Kernel time of the finishing task, ns (integral for counters).
        exec_ns: u64,
        /// The phase ends in an injected panic: the attempt faults and
        /// the task is retried instead of completing.
        faulted: bool,
    },
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
struct Event {
    key: Reverse<EventKeyOrd>,
    kind: EventKind,
}

// BinaryHeap is a max-heap; wrap the key so earliest-time pops first.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
struct EventKeyOrd(EventKeyBits);

#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
struct EventKeyBits {
    // f64 time encoded order-preservingly (all times are non-negative).
    t_bits: u64,
    seq: u64,
}

fn key(t: f64, seq: u64) -> Reverse<EventKeyOrd> {
    debug_assert!(t >= 0.0 && t.is_finite());
    Reverse(EventKeyOrd(EventKeyBits {
        t_bits: t.to_bits(),
        seq,
    }))
}

fn key_time(k: &Reverse<EventKeyOrd>) -> f64 {
    f64::from_bits(k.0 .0.t_bits)
}

struct Engine<'a> {
    m: MachineModel,
    /// Per-run machine-state factor applied to every task's kernel time.
    run_factor: f64,
    wl: &'a SimWorkload,
    counters: ThreadCounters,
    rng: Pcg32,
    heap: BinaryHeap<Event>,
    seq: u64,
    staged: Vec<VecDeque<u32>>,
    pending: Vec<VecDeque<u32>>,
    deps_left: Vec<u32>,
    dependents: Vec<Vec<u32>>,
    busy: Vec<bool>,
    /// Worker is parked-idle (last search failed, nothing since).
    is_idle: Vec<bool>,
    /// Number of parked-idle workers.
    idle_count: usize,
    /// Per-worker "fully accounted up to" timestamp for Σt_func.
    mark: Vec<f64>,
    executing: usize,
    completed: usize,
    idle_backoff: f64,
    fault_plan: Option<FaultPlan>,
    /// Attempt number of each task's next dispatch (0 on first run).
    attempts: Vec<u64>,
}

impl<'a> Engine<'a> {
    fn schedule(&mut self, t: f64, kind: EventKind) {
        self.seq += 1;
        self.heap.push(Event {
            key: key(t, self.seq),
            kind,
        });
    }

    /// Number of workers currently contending on the queue system (busy
    /// or searching — everyone not parked-idle).
    fn contenders(&self) -> usize {
        self.m.workers - self.idle_count
    }

    /// Charge an idle gap `[from, to]` of worker `w`: starvation time into
    /// Σt_func and the modeled number of failed sweeps into the queue
    /// counters. Idle sweeps run against quiet queues, so they use the
    /// current (low) contention level.
    fn charge_idle_gap(&mut self, w: usize, from: f64, to: f64) {
        if to <= from {
            return;
        }
        let gap = to - from;
        self.counters.func_ns.add(w, gap as u64);
        let sweep = self.m.failed_sweep_ns(self.contenders()) * self.idle_backoff;
        if sweep > 0.0 {
            let sweeps = (gap / sweep).floor() as u64;
            if sweeps > 0 {
                let p = sweeps * self.m.pending_probes_per_sweep();
                let s = sweeps * self.m.staged_probes_per_sweep();
                self.counters.pending_accesses.add(w, p);
                self.counters.pending_misses.add(w, p);
                self.counters.staged_accesses.add(w, s);
                self.counters.staged_misses.add(w, s);
            }
        }
    }

    /// One search following the native scheduler's order. Returns the task
    /// and the accumulated scheduling cost in ns.
    fn search(&mut self, w: usize) -> Option<(u32, f64)> {
        let c = &self.counters;
        let contenders = self.m.workers - self.idle_count;
        let probe = self.m.probe_ns(contenders);
        let mut cost = 0.0;
        'search: loop {
            // 1. Own pending.
            cost += probe;
            c.pending_accesses.incr(w);
            if let Some(task) = self.pending[w].pop_front() {
                return Some((task, cost));
            }
            c.pending_misses.incr(w);

            // 2. Own staged: convert → own pending → redo.
            cost += probe;
            c.staged_accesses.incr(w);
            if let Some(task) = self.staged[w].pop_front() {
                c.converted.incr(w);
                cost += self.m.convert_ns(contenders);
                self.pending[w].push_back(task);
                continue 'search;
            }
            c.staged_misses.incr(w);

            // 3+5. Staged steals: same NUMA domain first, then remote.
            for p in self
                .m
                .numa
                .same_domain_peers(w)
                .into_iter()
                .chain(self.m.numa.remote_domain_peers(w))
            {
                cost += probe;
                c.staged_accesses.incr(w);
                if let Some(task) = self.staged[p].pop_front() {
                    c.converted.incr(w);
                    c.stolen.incr(w);
                    cost += self.m.convert_ns(contenders) + self.m.steal_extra_ns(p, w, contenders);
                    self.pending[w].push_back(task);
                    continue 'search;
                }
                c.staged_misses.incr(w);
            }
            // 4+6. Pending steals.
            for p in self
                .m
                .numa
                .same_domain_peers(w)
                .into_iter()
                .chain(self.m.numa.remote_domain_peers(w))
            {
                cost += probe;
                c.pending_accesses.incr(w);
                if let Some(task) = self.pending[p].pop_front() {
                    c.stolen.incr(w);
                    cost += self.m.steal_extra_ns(p, w, contenders);
                    return Some((task, cost));
                }
                c.pending_misses.incr(w);
            }
            return None;
        }
    }

    /// Worker `w` wakes at time `t`: account its idle gap, search, and
    /// either dispatch a task or fall idle again.
    fn wake(&mut self, w: usize, t: f64) {
        if self.busy[w] {
            return; // stale wake
        }
        // The gap since `mark` was starvation only if unfinished work
        // existed, which is true whenever a wake is scheduled mid-run.
        if self.completed < self.wl.tasks.len() {
            self.charge_idle_gap(w, self.mark[w], t);
        }
        self.mark[w] = t;
        if self.is_idle[w] {
            self.is_idle[w] = false;
            self.idle_count -= 1;
        }

        match self.search(w) {
            Some((task, cost)) => {
                self.busy[w] = true;
                self.executing += 1;
                let contenders = self.contenders();
                let mut exec = self.run_factor
                    * self.m.exec_ns(
                        self.wl.tasks[task as usize].points,
                        self.executing,
                        self.wl.footprint_bytes,
                        &mut self.rng,
                    );
                // Injection verdicts are a pure function of (seed, task,
                // attempt) — independent of event order, so a faulty run
                // replays bit-identically.
                let action = self.fault_plan.as_ref().map_or(FaultAction::None, |p| {
                    p.decide(u64::from(task), self.attempts[task as usize])
                });
                let mut faulted = false;
                match action {
                    FaultAction::None => {}
                    FaultAction::Panic => faulted = true,
                    FaultAction::Delay(d) => exec += d.as_nanos() as f64,
                    FaultAction::SpuriousWake => {
                        // Extra wakes for parked peers: they charge their
                        // idle gap, sweep the queues, and re-park.
                        for v in 0..self.m.workers {
                            if v != w && self.is_idle[v] {
                                self.schedule(t, EventKind::Wake(v as u32));
                            }
                        }
                    }
                }
                let done_t = t + cost + self.m.dispatch_ns(contenders) + exec;
                self.schedule(
                    done_t,
                    EventKind::Done {
                        worker: w as u32,
                        task,
                        exec_ns: exec as u64,
                        faulted,
                    },
                );
            }
            None => {
                // The failed sweep's probes were already counted by
                // `search`; the worker parks idle with `mark` current and
                // will be woken by the next completion that releases work.
                self.is_idle[w] = true;
                self.idle_count += 1;
            }
        }
    }

    /// Worker `w` completes (or faults) `task` at time `t`.
    fn done(&mut self, w: usize, task: u32, exec_ns: u64, faulted: bool, t: f64) {
        let c = &self.counters;
        c.exec_ns.add(w, exec_ns);
        c.exec_histogram.record(exec_ns);
        c.func_ns.add(w, (t - self.mark[w]).max(0.0) as u64);
        self.mark[w] = t;
        c.phases.incr(w);
        self.busy[w] = false;
        self.executing -= 1;
        if faulted {
            // The attempt panicked: charged like a real phase, but the
            // task did not complete and releases nothing. Retry on the
            // same worker (the unwound frame's cache residue is local).
            c.faulted.incr(w);
            self.attempts[task as usize] += 1;
            assert!(
                self.attempts[task as usize] < 1_000,
                "fault injection: task {task} faulted 1000 attempts in a row \
                 (panic_rate too close to 1?)"
            );
            self.staged[w].push_back(task);
            self.schedule(t, EventKind::Wake(w as u32));
            return;
        }
        c.tasks.incr(w);
        self.completed += 1;
        if self.completed == self.wl.tasks.len() {
            return;
        }

        // Release dependents: spawned (staged) on this worker, like the
        // native dataflow continuations.
        let mut released = 0u64;
        let deps = std::mem::take(&mut self.dependents[task as usize]);
        for d in deps {
            self.deps_left[d as usize] -= 1;
            if self.deps_left[d as usize] == 0 {
                self.staged[w].push_back(d);
                self.counters.spawned.incr(w);
                released += 1;
            }
        }
        let spawn_cost = released as f64 * self.m.spawn_ns(self.contenders());
        let resume_t = t + spawn_cost;

        // This worker searches again after running its continuations.
        self.schedule(resume_t, EventKind::Wake(w as u32));
        // Wake every idle peer: they each charge their starvation gap and
        // try to steal (most will fail and re-idle; that failed sweep is
        // the paper's "scheduler continues to look for work").
        for v in 0..self.m.workers {
            if v != w && !self.busy[v] {
                self.schedule(resume_t, EventKind::Wake(v as u32));
            }
        }
    }

    fn run(mut self) -> SimReport {
        let n = self.wl.tasks.len();
        if n == 0 {
            return SimReport::from_counters(0.0, &self.counters);
        }
        let mut final_t = 0.0;
        while let Some(ev) = self.heap.pop() {
            let t = key_time(&ev.key);
            match ev.kind {
                EventKind::Wake(w) => self.wake(w as usize, t),
                EventKind::Done {
                    worker,
                    task,
                    exec_ns,
                    faulted,
                } => {
                    final_t = t;
                    self.done(worker as usize, task, exec_ns, faulted, t);
                    if self.completed == n {
                        break;
                    }
                }
            }
        }
        assert_eq!(
            self.completed, n,
            "simulation deadlocked: {} of {} tasks completed (cyclic or \
             unsatisfiable dependencies?)",
            self.completed, n
        );
        SimReport::from_counters(final_t, &self.counters)
    }
}

/// Simulate `workload` on `workers` cores of `platform`.
///
/// # Panics
/// Panics if the workload fails validation or the worker count exceeds the
/// platform's usable cores.
pub fn simulate(
    platform: &Platform,
    workers: usize,
    workload: &SimWorkload,
    config: &SimConfig,
) -> SimReport {
    workload
        .validate()
        .unwrap_or_else(|e| panic!("invalid workload: {e}"));
    let m = MachineModel::new(platform, workers);
    let n = workload.tasks.len();

    let mut deps_left: Vec<u32> = workload.tasks.iter().map(|t| t.deps.len() as u32).collect();
    let mut dependents: Vec<Vec<u32>> = vec![Vec::new(); n];
    for (i, t) in workload.tasks.iter().enumerate() {
        for &d in &t.deps {
            dependents[d as usize].push(i as u32);
        }
    }

    let mut staged: Vec<VecDeque<u32>> = (0..workers).map(|_| VecDeque::new()).collect();
    let pending: Vec<VecDeque<u32>> = (0..workers).map(|_| VecDeque::new()).collect();

    // Root tasks are spawned by the external driver, round-robin across
    // the staged queues (the native runtime's external-spawn routing).
    let counters = ThreadCounters::new(workers);
    let mut rr = 0usize;
    for (i, left) in deps_left.iter_mut().enumerate() {
        if *left == 0 {
            staged[rr % workers].push_back(i as u32);
            counters.spawned.incr(rr % workers);
            rr += 1;
        }
    }

    let mut rng = Pcg32::seed_from_u64(config.seed);
    let run_factor = if config.run_jitter_sigma > 0.0 {
        (config.run_jitter_sigma * rng.next_gaussian()).exp()
    } else {
        1.0
    };

    let mut engine = Engine {
        m,
        run_factor,
        wl: workload,
        counters,
        rng,
        heap: BinaryHeap::new(),
        seq: 0,
        staged,
        pending,
        deps_left,
        dependents,
        busy: vec![false; workers],
        is_idle: vec![false; workers],
        idle_count: 0,
        mark: vec![0.0; workers],
        executing: 0,
        completed: 0,
        idle_backoff: config.idle_backoff.max(1.0),
        fault_plan: config.fault_plan.clone().filter(|p| !p.is_empty()),
        attempts: vec![0; n],
    };
    for w in 0..workers {
        engine.schedule(0.0, EventKind::Wake(w as u32));
    }
    engine.run()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::SimWorkload;
    use grain_topology::presets;

    fn cfg() -> SimConfig {
        SimConfig::default()
    }

    #[test]
    fn empty_workload_finishes_instantly() {
        let r = simulate(&presets::haswell(), 4, &SimWorkload::new(), &cfg());
        assert_eq!(r.tasks, 0);
        assert_eq!(r.wall_ns, 0.0);
    }

    #[test]
    fn single_task_time_matches_model() {
        let p = presets::haswell();
        let wl = SimWorkload::independent(1, 100_000);
        let r = simulate(&p, 1, &wl, &cfg());
        assert_eq!(r.tasks, 1);
        let kernel = p.perf.task_fixed_ns + 100_000.0 * p.perf.per_point_ns(1, 1, false);
        // Wall = kernel (± jitter) + scheduling costs.
        assert!(
            r.wall_ns > kernel * 0.8 && r.wall_ns < kernel * 1.3,
            "wall {}",
            r.wall_ns
        );
        assert!(r.sum_func_ns >= r.sum_exec_ns);
    }

    #[test]
    fn all_tasks_complete_and_counters_are_consistent() {
        let wl = SimWorkload::independent(500, 5_000);
        let r = simulate(&presets::haswell(), 8, &wl, &cfg());
        assert_eq!(r.tasks, 500);
        assert_eq!(r.converted, 500);
        assert_eq!(r.tasks_per_worker.iter().sum::<u64>(), 500);
        assert!(r.sum_func_ns >= r.sum_exec_ns);
        assert!(r.pending_accesses >= r.pending_misses);
        assert!(r.staged_accesses >= r.staged_misses);
        assert!((0.0..=1.0).contains(&r.idle_rate()));
    }

    #[test]
    fn parallelism_shrinks_wall_clock() {
        let wl = SimWorkload::independent(256, 50_000);
        let one = simulate(&presets::haswell(), 1, &wl, &cfg());
        let eight = simulate(&presets::haswell(), 8, &wl, &cfg());
        assert!(
            eight.wall_ns < one.wall_ns / 2.0,
            "8 workers {} vs 1 worker {}",
            eight.wall_ns,
            one.wall_ns
        );
    }

    #[test]
    fn chain_is_serialized_regardless_of_workers() {
        let wl = SimWorkload::chain(50, 50_000);
        let one = simulate(&presets::haswell(), 1, &wl, &cfg());
        let many = simulate(&presets::haswell(), 8, &wl, &cfg());
        // A dependency chain cannot parallelize; the multi-worker run pays
        // the same serial latency, modulated only by the first-touch
        // striping boost (a lone stream on a parallel run reads at
        // `stripe_factor` × the single-core bandwidth) and steal costs.
        let stripe = presets::haswell().perf.stripe_factor;
        assert!(many.wall_ns > one.wall_ns / (stripe * 1.2));
        assert!(many.wall_ns < one.wall_ns * 1.5);
        assert_eq!(many.tasks, 50);
    }

    #[test]
    fn starving_workers_accrue_idle_rate() {
        // One long chain on many workers: most workers starve, so Σt_func
        // must be much larger than Σt_exec (the coarse-grain right edge of
        // Figs. 4 and 5).
        let wl = SimWorkload::chain(20, 1_000_000);
        let r = simulate(&presets::haswell(), 16, &wl, &cfg());
        assert!(
            r.idle_rate() > 0.5,
            "idle-rate {} too low for a starving run",
            r.idle_rate()
        );
        // And the starving sweeps must show up in the queue counters.
        assert!(r.pending_misses > r.tasks * 16);
    }

    #[test]
    fn fine_grain_has_higher_overhead_share_than_medium_grain() {
        // Same total points, different granularity, 8 workers.
        let fine = SimWorkload::independent(10_000, 100);
        let medium = SimWorkload::independent(100, 10_000);
        let rf = simulate(&presets::haswell(), 8, &fine, &cfg());
        let rm = simulate(&presets::haswell(), 8, &medium, &cfg());
        assert!(
            rf.task_overhead_ns() / rf.task_duration_ns()
                > rm.task_overhead_ns() / rm.task_duration_ns(),
            "fine grain must have a worse overhead ratio"
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let wl = SimWorkload::independent(200, 2_000);
        let a = simulate(&presets::xeon_phi(), 16, &wl, &cfg());
        let b = simulate(&presets::xeon_phi(), 16, &wl, &cfg());
        assert_eq!(a, b);
        let c = simulate(
            &presets::xeon_phi(),
            16,
            &wl,
            &SimConfig { seed: 99, ..cfg() },
        );
        assert_ne!(a.wall_ns, c.wall_ns, "different seed, different jitter");
    }

    #[test]
    fn injected_faults_retry_and_replay_bit_identically() {
        let wl = SimWorkload::independent(300, 2_000);
        let faulty = SimConfig {
            fault_plan: Some(FaultPlan::new(7).with_panic_rate(0.1)),
            ..SimConfig::default()
        };
        let a = simulate(&presets::haswell(), 4, &wl, &faulty);
        let b = simulate(&presets::haswell(), 4, &wl, &faulty);
        assert_eq!(a, b, "same fault plan must replay bit-identically");
        assert!(a.faulted > 0, "10% panic rate over 300 tasks must fault");
        assert_eq!(a.tasks, 300, "every task eventually completes");
        assert_eq!(a.phases, a.tasks + a.faulted);
        let clean = simulate(&presets::haswell(), 4, &wl, &cfg());
        assert_eq!(clean.faulted, 0, "no plan, no faults");
    }

    #[test]
    fn work_spreads_across_workers() {
        let wl = SimWorkload::independent(1_000, 10_000);
        let r = simulate(&presets::haswell(), 8, &wl, &cfg());
        let active = r.tasks_per_worker.iter().filter(|&&t| t > 0).count();
        assert!(active >= 7, "distribution {:?}", r.tasks_per_worker);
    }

    #[test]
    fn diamond_dependencies_resolve() {
        // a → (b, c) → d
        let mut wl = SimWorkload::new();
        let a = wl.push(1_000, vec![]);
        let b = wl.push(1_000, vec![a]);
        let c = wl.push(1_000, vec![a]);
        let _d = wl.push(1_000, vec![b, c]);
        let r = simulate(&presets::sandy_bridge(), 4, &wl, &cfg());
        assert_eq!(r.tasks, 4);
    }

    #[test]
    #[should_panic(expected = "invalid workload")]
    fn invalid_workload_panics() {
        let mut wl = SimWorkload::new();
        wl.tasks.push(crate::workload::SimTaskSpec {
            points: 1,
            deps: vec![5],
        });
        simulate(&presets::haswell(), 1, &wl, &cfg());
    }
}
