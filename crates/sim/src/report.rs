//! Simulation results: the same counter summary the native runtime
//! produces, plus the virtual wall-clock.

use grain_counters::ThreadCounters;

/// Outcome of one simulated run.
#[derive(Debug, Clone, PartialEq)]
pub struct SimReport {
    /// Virtual wall-clock at the last task completion, ns.
    pub wall_ns: f64,
    /// Workers in the run.
    pub workers: usize,
    /// Tasks completed.
    pub tasks: u64,
    /// Thread phases executed (== tasks + faulted attempts in the
    /// simulator: simulated tasks are single-phase).
    pub phases: u64,
    /// Attempts ended by an injected panic (each was retried; see
    /// [`crate::SimConfig::fault_plan`]).
    pub faulted: u64,
    /// Σ t_exec, ns.
    pub sum_exec_ns: u64,
    /// Σ t_func, ns.
    pub sum_func_ns: u64,
    /// Pending-queue probes.
    pub pending_accesses: u64,
    /// Pending-queue probes that found nothing.
    pub pending_misses: u64,
    /// Staged-queue probes.
    pub staged_accesses: u64,
    /// Staged-queue probes that found nothing.
    pub staged_misses: u64,
    /// Tasks taken from another worker's queues.
    pub stolen: u64,
    /// Staged→pending conversions.
    pub converted: u64,
    /// Tasks completed per worker.
    pub tasks_per_worker: Vec<u64>,
}

impl SimReport {
    /// Build a report from the engine's counters and final clock.
    pub fn from_counters(wall_ns: f64, counters: &ThreadCounters) -> Self {
        Self {
            wall_ns,
            workers: counters.workers(),
            tasks: counters.tasks.sum(),
            phases: counters.phases.sum(),
            faulted: counters.faulted.sum(),
            sum_exec_ns: counters.exec_ns.sum(),
            sum_func_ns: counters.func_ns.sum(),
            pending_accesses: counters.pending_accesses.sum(),
            pending_misses: counters.pending_misses.sum(),
            staged_accesses: counters.staged_accesses.sum(),
            staged_misses: counters.staged_misses.sum(),
            stolen: counters.stolen.sum(),
            converted: counters.converted.sum(),
            tasks_per_worker: counters.tasks.values(),
        }
    }

    /// Virtual execution time in seconds.
    pub fn wall_seconds(&self) -> f64 {
        self.wall_ns * 1e-9
    }

    /// Idle-rate (Eq. 1).
    pub fn idle_rate(&self) -> f64 {
        if self.sum_func_ns == 0 {
            return 0.0;
        }
        let exec = self.sum_exec_ns.min(self.sum_func_ns);
        (self.sum_func_ns - exec) as f64 / self.sum_func_ns as f64
    }

    /// Average task duration t_d in ns (Eq. 2).
    pub fn task_duration_ns(&self) -> f64 {
        if self.tasks == 0 {
            0.0
        } else {
            self.sum_exec_ns as f64 / self.tasks as f64
        }
    }

    /// Average task overhead t_o in ns (Eq. 3).
    pub fn task_overhead_ns(&self) -> f64 {
        if self.tasks == 0 {
            return 0.0;
        }
        let exec = self.sum_exec_ns.min(self.sum_func_ns);
        (self.sum_func_ns - exec) as f64 / self.tasks as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> SimReport {
        SimReport {
            wall_ns: 2e9,
            workers: 2,
            tasks: 10,
            phases: 10,
            faulted: 0,
            sum_exec_ns: 600,
            sum_func_ns: 1_000,
            pending_accesses: 40,
            pending_misses: 30,
            staged_accesses: 20,
            staged_misses: 10,
            stolen: 3,
            converted: 10,
            tasks_per_worker: vec![6, 4],
        }
    }

    #[test]
    fn derived_metrics_match_equations() {
        let r = sample();
        assert!((r.idle_rate() - 0.4).abs() < 1e-12);
        assert!((r.task_duration_ns() - 60.0).abs() < 1e-12);
        assert!((r.task_overhead_ns() - 40.0).abs() < 1e-12);
        assert!((r.wall_seconds() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn zero_task_report_is_all_zero() {
        let r = SimReport {
            tasks: 0,
            sum_exec_ns: 0,
            sum_func_ns: 0,
            ..sample()
        };
        assert_eq!(r.idle_rate(), 0.0);
        assert_eq!(r.task_duration_ns(), 0.0);
        assert_eq!(r.task_overhead_ns(), 0.0);
    }
}
