//! Seeded overload-and-fault storms for the chaos-soak harness.
//!
//! A [`StormPlan`] is a deterministic, pre-generated schedule of job
//! submissions across tenants: Poisson arrivals (exponential
//! inter-arrival draws from one [`Pcg32`](crate::rng::Pcg32) stream per
//! tenant), per-job task counts and grain sizes drawn from each tenant's
//! profile, and per-tenant *fault windows* — fractions of the horizon
//! during which that tenant's jobs panic. Equal seeds yield equal plans,
//! so a soak run (`soak --virtual-seconds 30 --seed 7`) replays the
//! exact same storm every time and its invariant checks are meaningful
//! across runs and machines.
//!
//! The plan knows nothing about the service: it is a pure description
//! (who submits what, when, and whether it faults). The soak binary in
//! `grain-bench` turns events into real [`grain-service`] submissions on
//! a scaled-down real-time clock.
//!
//! ## Seed-space split with the network chaos streams
//!
//! Storm tenants and [`crate::netplan::NetPlan`] verdict streams may be
//! driven by the *same* user-facing seed (the `netstorm` harness does
//! exactly that), so their Pcg32 streams must come from disjoint regions
//! of the 2⁶⁴ seed space. The contract: tenant `idx` seeds its stream as
//! `seed ^ (0x9e37_79b9_7f4a_7c15 · (idx + 1))` — the multiplicative
//! golden-ratio family over small indices — while every NetPlan stream
//! folds in [`crate::netplan::NET_STREAM_SALT`] and passes through a
//! full `splitmix64` finalizer. Changing either formula silently
//! decorrelates nothing and *recorrelates* everything, so the tenant
//! side is frozen by a bit-identity regression test below
//! (`recorded_storm_seed_is_bit_identical`) against a plan recorded when
//! the split was established.

use crate::netplan::splitmix64;
use crate::rng::Pcg32;
use std::time::Duration;

/// Seed-space salt for the fleet-chaos stream ("fleetchaos" squeezed
/// into 8 bytes). Mirrors [`crate::netplan::NET_STREAM_SALT`]: fleet
/// kill/drain/partition draws share the user-facing seed with the
/// tenant and network streams, so they must live in their own region of
/// the seed space. The full `splitmix64` finalizer keeps the stream
/// decorrelated from the tenant formula (`seed ^ golden·(idx+1)`),
/// which is frozen by `recorded_storm_seed_is_bit_identical`.
pub const FLEET_STREAM_SALT: u64 = 0x666c_6565_7463_6f73; // "fleetcos"

/// The dependency-graph family a tenant's job bodies are drawn from.
///
/// This is a pure *description* — the plan stays agnostic of how jobs
/// execute. [`GraphFamily::Flat`] is the historical shape (the root
/// spawns `tasks` independent children); the other variants name the
/// `grain-taskbench` graph families, which the soak harness expands
/// into real task DAGs. The family is per-tenant configuration, not a
/// per-event draw, so adding or changing families never perturbs the
/// seeded arrival/shape streams of existing plans.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum GraphFamily {
    /// `tasks` independent children of the root (the legacy shape).
    #[default]
    Flat,
    /// 1-D stencil halo graph.
    Stencil,
    /// FFT butterfly graph.
    Butterfly,
    /// Tree reduce-then-broadcast graph.
    Tree,
    /// Seeded random DAG.
    RandomDag,
    /// Embarrassingly-parallel sweep (independent chains).
    Sweep,
}

impl GraphFamily {
    /// Short stable name for reports.
    pub fn name(self) -> &'static str {
        match self {
            GraphFamily::Flat => "flat",
            GraphFamily::Stencil => "stencil",
            GraphFamily::Butterfly => "butterfly",
            GraphFamily::Tree => "tree",
            GraphFamily::RandomDag => "random-dag",
            GraphFamily::Sweep => "sweep",
        }
    }
}

/// One tenant's storm profile: its arrival process, job shape, and
/// (optionally) the window during which its jobs fault.
#[derive(Debug, Clone)]
pub struct TenantStorm {
    /// Tenant name, as submitted to the service.
    pub tenant: String,
    /// Mean of the exponential inter-arrival distribution.
    pub mean_interarrival: Duration,
    /// Inclusive range of tasks per job.
    pub tasks: (u64, u64),
    /// Inclusive range of per-task grain (virtual busy time).
    pub grain: (Duration, Duration),
    /// Deadline attached to every job of this tenant, if any.
    pub deadline: Option<Duration>,
    /// Fraction of the horizon `[start, end)` (both in `0.0..=1.0`)
    /// during which this tenant's jobs panic instead of working.
    pub fault_window: Option<(f64, f64)>,
    /// Dependency-graph family this tenant's job bodies use. Defaults
    /// to [`GraphFamily::Flat`] (the historical shape).
    pub family: GraphFamily,
}

impl TenantStorm {
    /// A well-behaved tenant: steady arrivals, no faults.
    pub fn steady(
        tenant: &str,
        mean_interarrival: Duration,
        tasks: (u64, u64),
        grain: (Duration, Duration),
    ) -> Self {
        Self {
            tenant: tenant.to_owned(),
            mean_interarrival,
            tasks,
            grain,
            deadline: None,
            fault_window: None,
            family: GraphFamily::Flat,
        }
    }

    /// Attach a per-job deadline.
    pub fn deadline(mut self, d: Duration) -> Self {
        self.deadline = Some(d);
        self
    }

    /// Make jobs submitted inside `[start, end)` of the horizon panic.
    pub fn faulting_during(mut self, start: f64, end: f64) -> Self {
        self.fault_window = Some((start, end));
        self
    }

    /// Draw this tenant's job bodies from a dependency-graph family.
    pub fn family(mut self, family: GraphFamily) -> Self {
        self.family = family;
        self
    }
}

/// One planned submission.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StormEvent {
    /// Offset from the storm start (virtual time).
    pub at: Duration,
    /// Owning tenant.
    pub tenant: String,
    /// Unique job name (`<tenant>-<n>`).
    pub name: String,
    /// Tasks the job spawns (beyond its root).
    pub tasks: u64,
    /// Busy time per task.
    pub grain: Duration,
    /// Deadline relative to submission, if the tenant has one.
    pub deadline: Option<Duration>,
    /// Whether this job panics instead of completing its work.
    pub faulty: bool,
    /// Dependency-graph family of the job body (copied from the
    /// tenant's profile; consumes no randomness).
    pub family: GraphFamily,
}

/// A fleet-level chaos action applied to the worker fleet mid-storm.
/// Pure description — the harness decides what "kill" or "drain" means
/// (sever links, announce drain over the parcelport, ...).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FleetAction {
    /// The worker locality dies abruptly: links sever, in-flight work
    /// is orphaned.
    Kill {
        /// The dying worker's locality id.
        worker: usize,
    },
    /// The worker announces a graceful drain: it stops accepting and
    /// hands queued jobs back.
    Drain {
        /// The draining worker's locality id.
        worker: usize,
    },
    /// The gateway↔worker link partitions (the harness picks the
    /// partition mode).
    Partition {
        /// The partitioned worker's locality id.
        worker: usize,
    },
    /// The matching partition heals.
    Heal {
        /// The healing worker's locality id.
        worker: usize,
    },
}

/// One scheduled fleet-chaos action.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FleetEvent {
    /// Offset from the storm start (virtual time).
    pub at: Duration,
    /// What happens.
    pub action: FleetAction,
}

/// Knobs for [`StormPlan::with_fleet_chaos`].
#[derive(Debug, Clone, Copy)]
pub struct FleetChaos {
    /// Workers killed over the storm (distinct victims, clamped to the
    /// fleet size minus one so at least one worker survives).
    pub kills: usize,
    /// Graceful drains (victims drawn independently of kills; draining
    /// an already-dead worker is a harness no-op).
    pub drains: usize,
    /// Partition/heal cycles on gateway↔worker links.
    pub partitions: usize,
    /// How long each partition holds before its heal event.
    pub partition_window: Duration,
}

/// A full, deterministic storm: every event of every tenant, merged and
/// sorted by submission time.
#[derive(Debug, Clone)]
pub struct StormPlan {
    /// All events, sorted by `at` (ties broken by tenant then name, so
    /// the order is total and seed-stable).
    pub events: Vec<StormEvent>,
    /// Fleet-chaos actions (kill/drain/partition/heal), sorted by `at`.
    /// Empty unless [`StormPlan::with_fleet_chaos`] was applied; drawn
    /// from a salted stream disjoint from the tenant streams, so adding
    /// fleet chaos never perturbs the submission schedule.
    pub fleet: Vec<FleetEvent>,
    /// The horizon the plan covers.
    pub horizon: Duration,
}

impl StormPlan {
    /// Generate the plan for `tenants` over `horizon` from `seed`.
    ///
    /// Each tenant draws from its own PCG stream (seeded from `seed`
    /// and the tenant's index), so adding a tenant to the list never
    /// perturbs the arrivals of the tenants before it.
    pub fn generate(seed: u64, horizon: Duration, tenants: &[TenantStorm]) -> Self {
        let mut events = Vec::new();
        for (idx, t) in tenants.iter().enumerate() {
            let mut rng = Pcg32::seed_from_u64(
                seed ^ (0x9e37_79b9_7f4a_7c15u64.wrapping_mul(idx as u64 + 1)),
            );
            let mean_s = t.mean_interarrival.as_secs_f64().max(1e-9);
            let mut at_s = 0.0f64;
            let mut n = 0u64;
            loop {
                // Exponential inter-arrival: -mean · ln(1 − u).
                let u = rng.next_f64();
                at_s += -mean_s * (1.0 - u).ln();
                if at_s >= horizon.as_secs_f64() {
                    break;
                }
                let at = Duration::from_secs_f64(at_s);
                let tasks = t.tasks.0 + rng.range_u64(t.tasks.1 - t.tasks.0 + 1);
                let grain_ns = {
                    let lo = t.grain.0.as_nanos() as u64;
                    let hi = t.grain.1.as_nanos() as u64;
                    if hi > lo {
                        lo + rng.range_u64(hi - lo + 1)
                    } else {
                        lo
                    }
                };
                let frac = at_s / horizon.as_secs_f64();
                let faulty = t.fault_window.is_some_and(|(s, e)| frac >= s && frac < e);
                events.push(StormEvent {
                    at,
                    tenant: t.tenant.clone(),
                    name: format!("{}-{n}", t.tenant),
                    tasks,
                    grain: Duration::from_nanos(grain_ns),
                    deadline: t.deadline,
                    faulty,
                    family: t.family,
                });
                n += 1;
            }
        }
        events.sort_by(|a, b| {
            a.at.cmp(&b.at)
                .then_with(|| a.tenant.cmp(&b.tenant))
                .then_with(|| a.name.cmp(&b.name))
        });
        Self {
            events,
            fleet: Vec::new(),
            horizon,
        }
    }

    /// Overlay a seeded schedule of fleet-chaos actions on the plan.
    ///
    /// Draws come from one dedicated Pcg32 stream seeded
    /// `splitmix64(seed ^ FLEET_STREAM_SALT)` — disjoint from both the
    /// tenant streams and every NetPlan stream — so the same user-facing
    /// seed can drive submissions, network weather, and fleet chaos
    /// without any of the three perturbing the others. All actions land
    /// in the middle 10%–85% of the horizon: chaos at the very edges
    /// either precedes any work or outlives it. Kill victims are
    /// distinct and at least one worker always survives.
    pub fn with_fleet_chaos(mut self, seed: u64, workers: &[usize], chaos: &FleetChaos) -> Self {
        let mut rng = Pcg32::seed_from_u64(splitmix64(seed ^ FLEET_STREAM_SALT));
        let horizon_s = self.horizon.as_secs_f64();
        let draw_at =
            |rng: &mut Pcg32| Duration::from_secs_f64(horizon_s * (0.10 + 0.75 * rng.next_f64()));
        let mut fleet = Vec::new();
        if !workers.is_empty() {
            // Kills: sample distinct victims, leaving at least one
            // survivor.
            let kills = chaos.kills.min(workers.len().saturating_sub(1));
            let mut pool: Vec<usize> = workers.to_vec();
            for _ in 0..kills {
                let pick = rng.range_u64(pool.len() as u64) as usize;
                let worker = pool.swap_remove(pick);
                fleet.push(FleetEvent {
                    at: draw_at(&mut rng),
                    action: FleetAction::Kill { worker },
                });
            }
            for _ in 0..chaos.drains {
                let worker = workers[rng.range_u64(workers.len() as u64) as usize];
                fleet.push(FleetEvent {
                    at: draw_at(&mut rng),
                    action: FleetAction::Drain { worker },
                });
            }
            for _ in 0..chaos.partitions {
                let worker = workers[rng.range_u64(workers.len() as u64) as usize];
                let at = draw_at(&mut rng);
                fleet.push(FleetEvent {
                    at,
                    action: FleetAction::Partition { worker },
                });
                fleet.push(FleetEvent {
                    at: at + chaos.partition_window,
                    action: FleetAction::Heal { worker },
                });
            }
        }
        fleet.sort_by_key(|e| e.at);
        self.fleet = fleet;
        self
    }

    /// Events belonging to `tenant`, in submission order.
    pub fn of_tenant<'a>(&'a self, tenant: &'a str) -> impl Iterator<Item = &'a StormEvent> {
        self.events.iter().filter(move |e| e.tenant == tenant)
    }

    /// Count of faulty events across all tenants.
    pub fn faulty_count(&self) -> usize {
        self.events.iter().filter(|e| e.faulty).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn three_tenants() -> Vec<TenantStorm> {
        vec![
            TenantStorm::steady(
                "alpha",
                Duration::from_millis(50),
                (2, 8),
                (Duration::from_micros(100), Duration::from_micros(400)),
            )
            .deadline(Duration::from_millis(200)),
            TenantStorm::steady(
                "beta",
                Duration::from_millis(80),
                (4, 16),
                (Duration::from_micros(200), Duration::from_micros(800)),
            ),
            TenantStorm::steady(
                "chaos",
                Duration::from_millis(25),
                (1, 4),
                (Duration::from_micros(50), Duration::from_micros(100)),
            )
            .faulting_during(0.0, 0.6),
        ]
    }

    /// FNV-1a fold used to fingerprint a plan for the bit-identity
    /// regression below.
    fn fnv(mut h: u64, bytes: &[u8]) -> u64 {
        for &b in bytes {
            h = (h ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01b3);
        }
        h
    }

    /// Bit-identity regression against a recorded storm. The tenant
    /// seeding formula (`seed ^ golden·(idx+1)`, see the module docs) is
    /// a public contract shared with the network chaos streams in
    /// [`crate::netplan`]: if it drifts, every replayed storm and every
    /// recorded `netstorm` report silently changes meaning. The constant
    /// below is the FNV-1a fingerprint of the plan that seed 7 produced
    /// over the three-tenant fixture when the stream-space split was
    /// established; it must never change.
    #[test]
    fn recorded_storm_seed_is_bit_identical() {
        let plan = StormPlan::generate(7, Duration::from_secs(5), &three_tenants());
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for e in &plan.events {
            h = fnv(h, &(e.at.as_nanos() as u64).to_le_bytes());
            h = fnv(h, e.name.as_bytes());
            h = fnv(h, &e.tasks.to_le_bytes());
            h = fnv(h, &(e.grain.as_nanos() as u64).to_le_bytes());
            h = fnv(h, &[u8::from(e.faulty)]);
        }
        assert_eq!(
            h, 0xef04_fe54_fc29_27af,
            "the seeded tenant streams drifted: replayed storms and recorded \
             netstorm reports no longer mean what they meant when recorded"
        );
    }

    #[test]
    fn same_seed_same_plan() {
        let a = StormPlan::generate(7, Duration::from_secs(5), &three_tenants());
        let b = StormPlan::generate(7, Duration::from_secs(5), &three_tenants());
        assert_eq!(a.events, b.events);
        assert!(!a.events.is_empty());
    }

    #[test]
    fn different_seeds_diverge() {
        let a = StormPlan::generate(7, Duration::from_secs(5), &three_tenants());
        let b = StormPlan::generate(8, Duration::from_secs(5), &three_tenants());
        assert_ne!(a.events, b.events);
    }

    #[test]
    fn events_are_sorted_and_within_horizon() {
        let plan = StormPlan::generate(42, Duration::from_secs(3), &three_tenants());
        for w in plan.events.windows(2) {
            assert!(w[0].at <= w[1].at);
        }
        for e in &plan.events {
            assert!(e.at < plan.horizon);
        }
    }

    #[test]
    fn fault_window_bounds_faulty_events() {
        let plan = StormPlan::generate(3, Duration::from_secs(5), &three_tenants());
        let horizon = plan.horizon.as_secs_f64();
        for e in plan.events.iter() {
            let frac = e.at.as_secs_f64() / horizon;
            match e.tenant.as_str() {
                "chaos" => assert_eq!(e.faulty, (0.0..0.6).contains(&frac)),
                _ => assert!(!e.faulty),
            }
        }
        assert!(plan.faulty_count() > 0, "chaos must fault in its window");
        assert!(
            plan.of_tenant("chaos").any(|e| !e.faulty),
            "chaos must recover after its window"
        );
    }

    #[test]
    fn adding_a_tenant_preserves_earlier_streams() {
        let two = &three_tenants()[..2];
        let a = StormPlan::generate(11, Duration::from_secs(4), two);
        let b = StormPlan::generate(11, Duration::from_secs(4), &three_tenants());
        let alpha_a: Vec<_> = a.of_tenant("alpha").cloned().collect();
        let alpha_b: Vec<_> = b.of_tenant("alpha").cloned().collect();
        assert_eq!(alpha_a, alpha_b);
    }

    #[test]
    fn families_ride_along_without_perturbing_streams() {
        let plain = StormPlan::generate(21, Duration::from_secs(4), &three_tenants());
        let mut shaped = three_tenants();
        shaped[0] = shaped[0].clone().family(GraphFamily::Stencil);
        shaped[1] = shaped[1].clone().family(GraphFamily::Tree);
        let with_families = StormPlan::generate(21, Duration::from_secs(4), &shaped);
        assert_eq!(plain.events.len(), with_families.events.len());
        for (a, b) in plain.events.iter().zip(&with_families.events) {
            // Identical arrivals and shapes — the family consumed no
            // randomness — only the family label differs.
            assert_eq!(a.at, b.at);
            assert_eq!(a.name, b.name);
            assert_eq!(a.tasks, b.tasks);
            assert_eq!(a.grain, b.grain);
            assert_eq!(a.faulty, b.faulty);
        }
        assert!(with_families
            .of_tenant("alpha")
            .all(|e| e.family == GraphFamily::Stencil));
        assert!(plain.events.iter().all(|e| e.family == GraphFamily::Flat));
    }

    fn some_chaos() -> FleetChaos {
        FleetChaos {
            kills: 2,
            drains: 1,
            partitions: 1,
            partition_window: Duration::from_millis(400),
        }
    }

    #[test]
    fn fleet_chaos_rides_along_without_perturbing_streams() {
        let plain = StormPlan::generate(7, Duration::from_secs(5), &three_tenants());
        let chaotic = StormPlan::generate(7, Duration::from_secs(5), &three_tenants())
            .with_fleet_chaos(7, &[1, 2, 3], &some_chaos());
        assert_eq!(
            plain.events, chaotic.events,
            "fleet chaos draws from its own stream; submissions unchanged"
        );
        assert!(plain.fleet.is_empty());
        assert!(!chaotic.fleet.is_empty());
    }

    #[test]
    fn fleet_chaos_is_deterministic_and_bounded() {
        let a = StormPlan::generate(7, Duration::from_secs(5), &three_tenants()).with_fleet_chaos(
            7,
            &[1, 2, 3],
            &some_chaos(),
        );
        let b = StormPlan::generate(7, Duration::from_secs(5), &three_tenants()).with_fleet_chaos(
            7,
            &[1, 2, 3],
            &some_chaos(),
        );
        assert_eq!(a.fleet, b.fleet);
        for w in a.fleet.windows(2) {
            assert!(w[0].at <= w[1].at, "fleet events sorted");
        }
        for e in &a.fleet {
            assert!(e.at >= Duration::from_millis(500), "not before 10%");
            // Heals may stretch past 85% by the partition window.
            assert!(e.at <= Duration::from_millis(4650), "within horizon");
        }
    }

    #[test]
    fn fleet_kills_leave_a_survivor_and_are_distinct() {
        let plan = StormPlan::generate(3, Duration::from_secs(5), &three_tenants())
            .with_fleet_chaos(
                3,
                &[1, 2],
                &FleetChaos {
                    kills: 5,
                    drains: 0,
                    partitions: 0,
                    partition_window: Duration::ZERO,
                },
            );
        let victims: Vec<usize> = plan
            .fleet
            .iter()
            .filter_map(|e| match e.action {
                FleetAction::Kill { worker } => Some(worker),
                _ => None,
            })
            .collect();
        assert_eq!(victims.len(), 1, "kills clamp to fleet size - 1");
        let mut dedup = victims.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), victims.len(), "victims are distinct");
    }

    #[test]
    fn fleet_partitions_pair_with_heals() {
        let plan = StormPlan::generate(11, Duration::from_secs(5), &three_tenants())
            .with_fleet_chaos(
                11,
                &[1, 2, 3],
                &FleetChaos {
                    kills: 0,
                    drains: 0,
                    partitions: 3,
                    partition_window: Duration::from_millis(200),
                },
            );
        let cuts = plan
            .fleet
            .iter()
            .filter(|e| matches!(e.action, FleetAction::Partition { .. }))
            .count();
        let heals = plan
            .fleet
            .iter()
            .filter(|e| matches!(e.action, FleetAction::Heal { .. }))
            .count();
        assert_eq!(cuts, 3);
        assert_eq!(heals, 3);
    }

    #[test]
    fn job_shapes_respect_profile_ranges() {
        let plan = StormPlan::generate(9, Duration::from_secs(5), &three_tenants());
        for e in plan.of_tenant("alpha") {
            assert!((2..=8).contains(&e.tasks));
            assert!(e.grain >= Duration::from_micros(100));
            assert!(e.grain <= Duration::from_micros(400));
            assert_eq!(e.deadline, Some(Duration::from_millis(200)));
        }
        for e in plan.of_tenant("beta") {
            assert_eq!(e.deadline, None);
        }
    }
}
