//! # grain-sim — discrete-event simulation of the grain scheduler
//!
//! The paper's experiments run on 16–61-core Intel nodes (Table I). This
//! crate substitutes those machines with a virtual-time discrete-event
//! simulator that executes the *same task DAGs* through the *same
//! scheduling policy* as `grain-runtime`:
//!
//! * per-worker staged/pending dual queues and the six-step Priority
//!   Local search order (Fig. 1), with per-probe costs and staged→pending
//!   conversion costs;
//! * spawn-on-completion locality: a task released by a completing task is
//!   staged on the completing worker's queue, exactly like the native
//!   dataflow continuations;
//! * starvation accounting: idle workers keep "looking for work" — their
//!   idle time flows into `Σt_func` and their failed sweeps into the
//!   pending/staged access and miss counters, reproducing the coarse-grain
//!   behaviour of Figs. 4, 5, 9 and 10;
//! * a calibrated kernel-time model ([`grain_topology::PerfParams`]):
//!   saturating aggregate memory throughput (the strong-scaling limiter on
//!   the Xeon parts and the ring/GDDR limiter on the Phi), first-touch
//!   striping (the negative-wait-time mechanism at very coarse grain),
//!   cache-residency floors and log-normal jitter;
//! * scheduler-cost contention multipliers fit to the paper's ~90 % fine-
//!   grain idle rates.
//!
//! The simulator emits the same counter surface
//! ([`grain_counters::ThreadCounters`]) as the native runtime, so the
//! metric layer (`grain-metrics`) treats both engines identically.
//!
//! ## Example
//!
//! ```
//! use grain_sim::{simulate, SimConfig, SimWorkload};
//! use grain_topology::presets;
//!
//! // 64 independent tasks of 10_000 points each on a Haswell node.
//! let wl = SimWorkload::independent(64, 10_000);
//! let report = simulate(&presets::haswell(), 8, &wl, &SimConfig::default());
//! assert_eq!(report.tasks, 64);
//! assert!(report.wall_ns > 0.0);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod engine;
pub mod fabric;
pub mod machine;
pub mod netplan;
pub mod report;
pub mod rng;
pub mod storm;
pub mod workload;

pub use engine::{simulate, SimConfig};
pub use fabric::{LedgerSnapshot, NetFabric, SimFrameClass, SimSink, SubmitOutcome};
pub use machine::MachineModel;
pub use netplan::{FrameFate, NetPlan, PartitionMode, PartitionWindow, Verdict};
pub use report::SimReport;
pub use storm::{FleetAction, FleetChaos, FleetEvent, StormEvent, StormPlan, TenantStorm};
pub use workload::{SimTaskSpec, SimWorkload};
