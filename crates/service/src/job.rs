//! Jobs: first-class units of submitted work.
//!
//! A *job* wraps a whole task DAG — a stencil run, a `parallel_for`
//! sweep, an arbitrary dataflow graph — behind one identity with a
//! tenant, a priority, an optional deadline, and a lifecycle:
//!
//! ```text
//! Queued ──▶ Admitted ──▶ Running ──▶ Completed
//!    ▲                       ├──────▶ Cancelled   (JobHandle::cancel)
//!    │                       ├──────▶ TimedOut    (deadline expiry)
//!    │                       ├──────▶ Failed      (task fault, FailurePolicy)
//!    │                       └──╮
//!    ╰──────── retry ───────────╯                 (RetryWithBackoff)
//!    └──────────────────────────────▶ Rejected    (admission control:
//!                                      queue-full | shed | breaker-open |
//!                                      shutting-down — see RejectReason)
//! ```
//!
//! Every task the job's root spawns (directly or transitively, through
//! the [`grain_runtime::TaskContext`] API) joins the job's
//! [`grain_runtime::TaskGroup`], which is what makes `wait`, `cancel`
//! and deadlines work per job instead of per runtime.

use crate::admission::{AdmissionError, RejectReason};
use crate::counters::JobCounters;
use grain_counters::sync::{Condvar, Mutex};
use grain_counters::{CounterValue, RegistryError};
use grain_runtime::{Priority, TaskContext, TaskError, TaskGroup};
use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Unique job identifier, allocated at submission.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct JobId(pub u64);

impl fmt::Display for JobId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "job#{}", self.0)
    }
}

/// Job scheduling class, mapped onto the runtime's Priority Local-FIFO
/// queues (§I-B of the paper: high-priority dual queues, per-worker
/// normal queues, one low-priority queue).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum JobPriority {
    /// Latency-sensitive; tasks go to the high-priority dual queues.
    Interactive,
    /// Default throughput class; per-worker normal queues.
    #[default]
    Batch,
    /// Runs only when nothing else needs the cores; the low queue.
    BestEffort,
}

impl JobPriority {
    /// The runtime task priority this class maps to.
    pub fn task_priority(self) -> Priority {
        match self {
            JobPriority::Interactive => Priority::High,
            JobPriority::Batch => Priority::Normal,
            JobPriority::BestEffort => Priority::Low,
        }
    }
}

/// Job lifecycle states. Terminal states are `Completed`, `Cancelled`,
/// `TimedOut`, `Failed` and `Rejected`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum JobState {
    /// Accepted into a tenant queue, waiting for admission (or, after a
    /// faulted attempt under `RetryWithBackoff`, for re-admission).
    Queued,
    /// Past admission control; budget reserved, about to start.
    Admitted,
    /// Root task handed to the runtime; the DAG is executing.
    Running,
    /// Every task of the job terminated normally.
    Completed,
    /// Cancelled by [`JobHandle::cancel`]; queued members were skipped.
    Cancelled,
    /// The deadline expired before the job finished.
    TimedOut,
    /// A task of the job faulted (panicked or inherited a dependency
    /// fault) and the job's [`FailurePolicy`] did not (or could no
    /// longer) retry. The first fault is in [`JobOutcome::fault`].
    Failed,
    /// Refused by admission control — backpressure, load shedding, an
    /// open circuit breaker, or shutdown. The *class* of refusal is in
    /// [`JobOutcome::reject_reason`] / [`JobHandle::rejection`]; these
    /// are distinct conditions and must not be conflated.
    Rejected,
}

impl JobState {
    /// True for the five states a job can never leave.
    pub fn is_terminal(self) -> bool {
        matches!(
            self,
            JobState::Completed
                | JobState::Cancelled
                | JobState::TimedOut
                | JobState::Failed
                | JobState::Rejected
        )
    }
}

impl fmt::Display for JobState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            JobState::Queued => "queued",
            JobState::Admitted => "admitted",
            JobState::Running => "running",
            JobState::Completed => "completed",
            JobState::Cancelled => "cancelled",
            JobState::TimedOut => "timed-out",
            JobState::Failed => "failed",
            JobState::Rejected => "rejected",
        };
        f.write_str(s)
    }
}

/// What the service does when a task of a job faults — i.e. a task body
/// panics (contained by the runtime's panic isolation) or inherits a
/// dependency fault through a `dataflow`/`when_all` chain.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FailurePolicy {
    /// Cancel the rest of the job as soon as any task faults: queued
    /// tasks are skipped, dormant dataflow nodes released, and the job
    /// finishes as [`JobState::Failed`] once in-flight tasks drain.
    /// The default.
    #[default]
    FailFast,
    /// Let every remaining task run; the job still finishes as
    /// [`JobState::Failed`] with the first fault recorded. Use when
    /// partial results matter.
    ContinueRemaining,
    /// Re-run the job body from scratch, up to `max_attempts` total
    /// attempts. Before re-admission the job waits out an exponential
    /// backoff of `base · 2^(n−1)` after its n-th faulted attempt,
    /// capped at `cap`; retries re-pass admission control (budget is
    /// released in between). Exhausting the attempts finishes the job
    /// as [`JobState::Failed`].
    RetryWithBackoff {
        /// Total attempts, including the first (clamped to ≥ 1).
        max_attempts: u32,
        /// Backoff after the first faulted attempt.
        base: Duration,
        /// Upper bound on the backoff, whatever the attempt number.
        cap: Duration,
    },
}

/// The chunkable *work shape* of a job: how much total work it covers
/// and the grain (work units per task) this submission was chunked at.
///
/// A shape-carrying job tells the service "this is `units` units of
/// work currently cut into `ceil(units / grain)` tasks" instead of
/// hiding the partition inside its body. That is the seam the
/// `grain-autotune` controller drives: it observes the completed job's
/// counters through the service policy hook and re-chunks the tenant's
/// *next* submission by changing `grain`. The service itself treats the
/// shape as opaque metadata — admission and scheduling are unchanged.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct JobShape {
    /// Total work units the job covers (elements, cells, or busy-work
    /// iterations — the unit is the submitter's).
    pub units: u64,
    /// Work units per task this submission was chunked at (≥ 1).
    pub grain: u64,
}

impl JobShape {
    /// A shape of `units` total work at `grain` units per task.
    pub fn new(units: u64, grain: u64) -> Self {
        Self {
            units,
            grain: grain.max(1),
        }
    }

    /// The task count this shape expands to: `ceil(units / grain)`,
    /// at least 1.
    pub fn tasks(&self) -> u64 {
        self.units.div_ceil(self.grain.max(1)).max(1)
    }
}

/// Everything a client declares about a job up front. Build with
/// [`JobSpec::new`] and the chainable setters.
#[derive(Debug, Clone)]
pub struct JobSpec {
    /// Human-readable job name; combined with the id into the counter
    /// instance `name#id`, so names need not be unique.
    pub name: String,
    /// The tenant this job is accounted to (fair-share bucket).
    pub tenant: String,
    /// Scheduling class.
    pub priority: JobPriority,
    /// Wall-clock budget measured from submission; on expiry the job is
    /// cancelled and finishes as [`JobState::TimedOut`].
    pub deadline: Option<Duration>,
    /// The client's estimate of how many tasks the job will run,
    /// used by admission control as the job's budget cost (clamped to a
    /// minimum of 1). A bad estimate degrades fairness, not correctness.
    pub estimated_tasks: u64,
    /// What to do when a task of the job faults.
    pub failure_policy: FailurePolicy,
    /// The job's chunkable work shape, when the submitter exposes one.
    /// Read by service policies (e.g. the autotune grain controller);
    /// ignored by admission and scheduling.
    pub shape: Option<JobShape>,
}

impl JobSpec {
    /// A batch-priority spec with no deadline and a cost estimate of 1.
    pub fn new(name: impl Into<String>, tenant: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            tenant: tenant.into(),
            priority: JobPriority::default(),
            deadline: None,
            estimated_tasks: 1,
            failure_policy: FailurePolicy::default(),
            shape: None,
        }
    }

    /// Set the scheduling class.
    #[must_use]
    pub fn priority(mut self, p: JobPriority) -> Self {
        self.priority = p;
        self
    }

    /// Set the deadline (measured from submission).
    #[must_use]
    pub fn deadline(mut self, d: Duration) -> Self {
        self.deadline = Some(d);
        self
    }

    /// Set the estimated task count used as the admission cost.
    #[must_use]
    pub fn estimated_tasks(mut self, n: u64) -> Self {
        self.estimated_tasks = n;
        self
    }

    /// Set the failure policy.
    #[must_use]
    pub fn failure_policy(mut self, p: FailurePolicy) -> Self {
        self.failure_policy = p;
        self
    }

    /// Declare the job's chunkable work shape (also folds the shape's
    /// task count into the admission estimate when the default estimate
    /// of 1 was never overridden).
    #[must_use]
    pub fn shape(mut self, shape: JobShape) -> Self {
        if self.estimated_tasks <= 1 {
            self.estimated_tasks = shape.tasks();
        }
        self.shape = Some(shape);
        self
    }

    /// Shorthand for [`FailurePolicy::RetryWithBackoff`] with a one-second
    /// backoff cap.
    #[must_use]
    pub fn retry(self, max_attempts: u32, base: Duration) -> Self {
        self.failure_policy(FailurePolicy::RetryWithBackoff {
            max_attempts,
            base,
            cap: Duration::from_secs(1),
        })
    }
}

/// The root closure of a job: runs as the job's first task; everything
/// it spawns through the context joins the job's group. `FnMut` rather
/// than `FnOnce` so a `RetryWithBackoff` job can re-run it from scratch
/// on each attempt.
pub type JobBody = Box<dyn FnMut(&mut TaskContext<'_>) + Send>;

/// Shared state of one job. Internal; clients hold a [`JobHandle`].
pub(crate) struct JobCore {
    pub(crate) id: JobId,
    pub(crate) spec: JobSpec,
    pub(crate) group: Arc<TaskGroup>,
    pub(crate) counters: JobCounters,
    /// Admission budget cost (`spec.estimated_tasks.max(1)`).
    pub(crate) cost: u64,
    state: Mutex<JobState>,
    state_cv: Condvar,
    pub(crate) cancel_requested: AtomicBool,
    pub(crate) timed_out: AtomicBool,
    /// This admission was a half-open circuit-breaker probe; its outcome
    /// decides whether the tenant's breaker re-closes or re-opens.
    pub(crate) probe: AtomicBool,
    pub(crate) rejection: Mutex<Option<AdmissionError>>,
    pub(crate) submitted_at: Instant,
    pub(crate) admitted_at: Mutex<Option<Instant>>,
    pub(crate) finished_at: Mutex<Option<Instant>>,
    /// Attempts started (1 after the first admission).
    pub(crate) attempts: AtomicU64,
    /// Retries performed; shared with the `/jobs{...}/tasks/retried`
    /// counter surface.
    pub(crate) retried: Arc<AtomicU64>,
    /// Backoff gate: the dispatcher will not re-admit the job before
    /// this instant.
    pub(crate) not_before: Mutex<Option<Instant>>,
    /// The root closure; the dispatcher runs it once per attempt.
    pub(crate) body: Mutex<JobBody>,
}

impl JobCore {
    /// `group` must be the same group `counters` was registered against,
    /// or the job's counter surface will read someone else's tasks.
    pub(crate) fn new(
        id: JobId,
        spec: JobSpec,
        group: Arc<TaskGroup>,
        counters: JobCounters,
        body: JobBody,
    ) -> Self {
        let cost = spec.estimated_tasks.max(1);
        let retried = counters.retried_handle();
        Self {
            id,
            spec,
            group,
            counters,
            cost,
            state: Mutex::new(JobState::Queued),
            state_cv: Condvar::new(),
            cancel_requested: AtomicBool::new(false),
            timed_out: AtomicBool::new(false),
            probe: AtomicBool::new(false),
            rejection: Mutex::new(None),
            submitted_at: Instant::now(),
            admitted_at: Mutex::new(None),
            finished_at: Mutex::new(None),
            attempts: AtomicU64::new(0),
            retried,
            not_before: Mutex::new(None),
            body: Mutex::new(body),
        }
    }

    /// The counter instance this job registers under: `name#id`.
    pub(crate) fn instance(&self) -> String {
        format!("{}#{}", self.spec.name, self.id.0)
    }

    pub(crate) fn state(&self) -> JobState {
        *self.state.lock()
    }

    /// Non-terminal transition; wakes waiters. A job that already
    /// reached a terminal state is left alone — waiters may have
    /// observed that state, and it can never be un-terminalized.
    pub(crate) fn set_state(&self, to: JobState) {
        let mut g = self.state.lock();
        if g.is_terminal() {
            return;
        }
        *g = to;
        self.state_cv.notify_all();
    }

    /// `Queued → Admitted`, atomic with respect to the
    /// `Queued → Cancelled` path in [`JobHandle::cancel`] (both run
    /// under the state mutex). Returns false — and changes nothing — if
    /// the job already left `Queued` (cancelled or expired while it
    /// waited); such a job must not be started or charged any budget.
    pub(crate) fn try_admit(&self) -> bool {
        let mut g = self.state.lock();
        if *g != JobState::Queued {
            return false;
        }
        *g = JobState::Admitted;
        self.state_cv.notify_all();
        true
    }

    /// Terminal transition `Queued → to` iff the job is still `Queued`,
    /// atomic with respect to [`try_admit`](Self::try_admit). Does not
    /// wake waiters — the winner finishes its bookkeeping first, then
    /// calls [`notify_waiters`](Self::notify_waiters).
    pub(crate) fn finish_if_queued(&self, to: JobState) -> bool {
        debug_assert!(to.is_terminal());
        let mut g = self.state.lock();
        if *g != JobState::Queued {
            return false;
        }
        *g = to;
        *self.finished_at.lock() = Some(Instant::now());
        true
    }

    /// Transition to terminal state `to` unless already terminal. Returns
    /// true if this call performed the transition — the winner does the
    /// terminal bookkeeping (counters, budget release) exactly once.
    pub(crate) fn finish(&self, to: JobState) -> bool {
        let won = self.finish_quiet(to);
        if won {
            self.notify_waiters();
        }
        won
    }

    /// [`finish`](Self::finish) without waking waiters: the winner does
    /// its bookkeeping first and calls
    /// [`notify_waiters`](Self::notify_waiters) after, so a returning
    /// [`JobHandle::wait`] always observes fully settled counters.
    pub(crate) fn finish_quiet(&self, to: JobState) -> bool {
        debug_assert!(to.is_terminal());
        let mut g = self.state.lock();
        if g.is_terminal() {
            return false;
        }
        *g = to;
        *self.finished_at.lock() = Some(Instant::now());
        true
    }

    /// Wake everyone blocked in `wait_terminal*`.
    pub(crate) fn notify_waiters(&self) {
        let _g = self.state.lock();
        self.state_cv.notify_all();
    }

    pub(crate) fn wait_terminal(&self) -> JobState {
        let mut g = self.state.lock();
        while !g.is_terminal() {
            self.state_cv.wait(&mut g);
        }
        *g
    }

    pub(crate) fn wait_terminal_timeout(&self, timeout: Duration) -> Option<JobState> {
        let deadline = Instant::now() + timeout;
        let mut g = self.state.lock();
        while !g.is_terminal() {
            let now = Instant::now();
            if now >= deadline {
                return None;
            }
            self.state_cv.wait_for(&mut g, deadline - now);
        }
        Some(*g)
    }

    /// Submission-to-finish latency (up to now for non-terminal jobs).
    pub(crate) fn turnaround(&self) -> Duration {
        self.finished_at
            .lock()
            .map_or_else(|| self.submitted_at.elapsed(), |t| t - self.submitted_at)
    }

    pub(crate) fn outcome_now(&self, state: JobState) -> JobOutcome {
        JobOutcome {
            state,
            tasks_completed: self.group.completed(),
            tasks_skipped: self.group.skipped(),
            tasks_budget_skipped: self.group.budget_skipped(),
            tasks_spawned: self.group.spawned(),
            tasks_faulted: self.group.faulted(),
            exec_ns: self.group.exec_ns(),
            turnaround: self.turnaround(),
            fault: self.group.first_fault(),
            retries: self.retried.load(Ordering::SeqCst),
            // Gated on the state: a shed attempt that lost its race to a
            // concurrent cancel clears `rejection` after the fact, and a
            // non-rejected outcome must never surface a reject reason.
            reject_reason: if state == JobState::Rejected {
                self.rejection.lock().as_ref().map(AdmissionError::reason)
            } else {
                None
            },
            origin_locality: None,
        }
    }
}

/// Final report of a finished job. Task counts are cumulative across
/// retry attempts (a job that faulted once and then succeeded reports
/// the tasks of both attempts).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobOutcome {
    /// The terminal state.
    pub state: JobState,
    /// Tasks that ran to completion.
    pub tasks_completed: u64,
    /// Tasks skipped by cancellation (queued members never executed and
    /// dataflow nodes released before spawning).
    pub tasks_skipped: u64,
    /// The subset of `tasks_skipped` dropped at dispatch because the
    /// job's deadline budget was already exhausted (deadline
    /// propagation, [`grain_runtime::TaskGroup::budget_exhausted`]).
    pub tasks_budget_skipped: u64,
    /// Total tasks ever entered into the job's group.
    pub tasks_spawned: u64,
    /// Tasks that faulted in the job's *last* attempt (the count is
    /// reset when a retry starts; a successful retry reports 0).
    pub tasks_faulted: u64,
    /// Cumulative execution time over the job's task phases.
    pub exec_ns: u64,
    /// Submission-to-finish wall-clock time.
    pub turnaround: Duration,
    /// The first fault of the last attempt, if any — a `Failed` job's
    /// reason; trace a mid-DAG panic with [`TaskError::root_cause`].
    pub fault: Option<TaskError>,
    /// Retries performed (attempts − 1 for admitted jobs).
    pub retries: u64,
    /// For [`JobState::Rejected`] jobs, the class of refusal
    /// (backpressure, shed, breaker, shutdown); `None` otherwise. The
    /// full detail is in [`JobHandle::rejection`].
    pub reject_reason: Option<RejectReason>,
    /// The locality the job actually ran on (or was refused by), when it
    /// was executed remotely via a fleet gateway. `None` for jobs that
    /// ran in the local service. Remote rejections carry the
    /// *originating* worker's id here rather than folding it into an
    /// error string.
    pub origin_locality: Option<usize>,
}

/// Client-side handle to a submitted job. Cheap to clone; the job's
/// counters stay registered as long as any handle (or the service's own
/// reference, while the job is live) exists.
#[derive(Clone)]
pub struct JobHandle {
    pub(crate) core: Arc<JobCore>,
}

impl JobHandle {
    /// The job's id.
    pub fn id(&self) -> JobId {
        self.core.id
    }

    /// The job's name as submitted.
    pub fn name(&self) -> &str {
        &self.core.spec.name
    }

    /// The tenant the job is accounted to.
    pub fn tenant(&self) -> &str {
        &self.core.spec.tenant
    }

    /// The counter instance (`name#id`) under `/jobs{...}`.
    pub fn instance(&self) -> String {
        self.core.instance()
    }

    /// Current lifecycle state.
    pub fn state(&self) -> JobState {
        self.core.state()
    }

    /// Why admission refused the job, if it was rejected.
    pub fn rejection(&self) -> Option<AdmissionError> {
        self.core.rejection.lock().clone()
    }

    /// The coarse class of the refusal (queue-full vs shed vs
    /// breaker-open vs shutdown), if the job was rejected.
    pub fn reject_reason(&self) -> Option<RejectReason> {
        self.core
            .rejection
            .lock()
            .as_ref()
            .map(AdmissionError::reason)
    }

    /// The first fault of the job's current/last attempt, if any.
    pub fn fault(&self) -> Option<TaskError> {
        self.core.group.first_fault()
    }

    /// Retries performed so far.
    pub fn retries(&self) -> u64 {
        self.core.retried.load(Ordering::SeqCst)
    }

    /// Request cooperative cancellation. Queued jobs finish as
    /// [`JobState::Cancelled`] immediately; running jobs stop at the next
    /// scheduling point (queued tasks are skipped, dormant dataflow nodes
    /// released, active phases run to their end). Idempotent; has no
    /// effect on jobs already in a terminal state.
    pub fn cancel(&self) {
        self.core.cancel_requested.store(true, Ordering::SeqCst);
        // `Queued → Cancelled` and admission exclude each other under the
        // state mutex: either this wins and the dispatcher's `try_admit`
        // later skips the job (no budget charged, entry reaped as a
        // terminal head), or admission won and the cooperative path
        // below applies.
        if self.core.finish_if_queued(JobState::Cancelled) {
            // Not yet started: no tasks to drain; settle it here. Mark
            // the group before waking waiters so the outcome they read
            // is fully settled.
            self.core.group.cancel();
            self.core.notify_waiters();
            return;
        }
        if !self.core.state().is_terminal() {
            self.core.group.cancel();
        }
    }

    /// Block until the job reaches a terminal state; returns the outcome.
    pub fn wait(&self) -> JobOutcome {
        let state = self.core.wait_terminal();
        self.core.outcome_now(state)
    }

    /// [`wait`](Self::wait) with a timeout; `None` if still running.
    pub fn wait_timeout(&self, timeout: Duration) -> Option<JobOutcome> {
        self.core
            .wait_terminal_timeout(timeout)
            .map(|s| self.core.outcome_now(s))
    }

    /// The outcome if the job already finished, else `None`.
    pub fn outcome(&self) -> Option<JobOutcome> {
        let state = self.core.state();
        state.is_terminal().then(|| self.core.outcome_now(state))
    }

    /// Full registry paths of this job's counters
    /// (`/jobs{name#id}/threads/...`).
    pub fn counter_paths(&self) -> Vec<String> {
        self.core.counters.paths()
    }

    /// Sample one of this job's counters by short name, e.g.
    /// `threads/count/cumulative`.
    pub fn query_counter(&self, name: &str) -> Result<CounterValue, RegistryError> {
        self.core.counters.query(name)
    }
}

impl fmt::Debug for JobHandle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("JobHandle")
            .field("id", &self.core.id)
            .field("name", &self.core.spec.name)
            .field("tenant", &self.core.spec.tenant)
            .field("state", &self.core.state())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn priorities_map_onto_runtime_queues() {
        assert_eq!(JobPriority::Interactive.task_priority(), Priority::High);
        assert_eq!(JobPriority::Batch.task_priority(), Priority::Normal);
        assert_eq!(JobPriority::BestEffort.task_priority(), Priority::Low);
        assert_eq!(JobPriority::default(), JobPriority::Batch);
    }

    #[test]
    fn terminal_states() {
        for s in [
            JobState::Completed,
            JobState::Cancelled,
            JobState::TimedOut,
            JobState::Failed,
            JobState::Rejected,
        ] {
            assert!(s.is_terminal(), "{s}");
        }
        for s in [JobState::Queued, JobState::Admitted, JobState::Running] {
            assert!(!s.is_terminal(), "{s}");
        }
    }

    #[test]
    fn spec_builder_chains() {
        let spec = JobSpec::new("render", "tenant-a")
            .priority(JobPriority::Interactive)
            .deadline(Duration::from_secs(1))
            .estimated_tasks(64);
        assert_eq!(spec.name, "render");
        assert_eq!(spec.tenant, "tenant-a");
        assert_eq!(spec.priority, JobPriority::Interactive);
        assert_eq!(spec.deadline, Some(Duration::from_secs(1)));
        assert_eq!(spec.estimated_tasks, 64);
    }

    #[test]
    fn shape_sets_estimate_without_clobbering_an_explicit_one() {
        let spec = JobSpec::new("sweep", "a").shape(JobShape::new(1000, 100));
        assert_eq!(spec.shape, Some(JobShape::new(1000, 100)));
        assert_eq!(spec.estimated_tasks, 10, "derived from the shape");
        let spec = JobSpec::new("sweep", "a")
            .estimated_tasks(64)
            .shape(JobShape::new(1000, 100));
        assert_eq!(spec.estimated_tasks, 64, "explicit estimate wins");
        // Degenerate shapes stay sane.
        assert_eq!(JobShape::new(0, 0).tasks(), 1);
        assert_eq!(JobShape::new(7, 2).tasks(), 4);
    }

    #[test]
    fn finish_is_single_shot() {
        let reg = Arc::new(grain_counters::Registry::new());
        let group = TaskGroup::new();
        let counters = JobCounters::register(&reg, "t#0", &group).unwrap();
        let core = JobCore::new(
            JobId(0),
            JobSpec::new("t", "a"),
            group,
            counters,
            Box::new(|_| {}),
        );
        assert!(core.finish(JobState::Cancelled));
        assert!(!core.finish(JobState::Completed), "already terminal");
        assert_eq!(core.state(), JobState::Cancelled);
    }
}
