//! The job service: submission, dispatch, deadlines, shutdown.
//!
//! A [`JobService`] owns a [`Runtime`] and a dispatcher thread. Clients
//! [`submit`](JobService::submit) jobs; the dispatcher admits them from
//! per-tenant queues in weighted fair-share order whenever the task
//! budget allows, hands each job's root task to the runtime inside the
//! job's [`grain_runtime::TaskGroup`], watches deadlines, and settles
//! terminal states from the group's quiescence latch. Nothing in the
//! serving layer touches the runtime's hot dispatch path — jobs meter
//! themselves through their groups.
//!
//! Failure handling rides on the runtime's panic isolation: a faulted
//! task never kills a worker, it marks the job's group, and the job's
//! [`FailurePolicy`](crate::job::FailurePolicy) decides at settlement
//! whether the job fails fast, runs out its remaining tasks, or goes
//! back through admission for another attempt after a backoff.

#![deny(clippy::unwrap_used)]

use crate::admission::{AdmissionError, FairQueues};
use crate::breaker::{BreakerConfig, BreakerDecision, BreakerSet, BreakerState};
use crate::counters::{JobCounters, ServiceCounters};
use crate::job::{FailurePolicy, JobCore, JobHandle, JobId, JobOutcome, JobSpec, JobState};
use crate::pressure::{PressureConfig, PressureController, PressureSignal};
use grain_counters::sync::{Condvar, Mutex};
use grain_counters::Registry;
use grain_runtime::{Runtime, RuntimeConfig, TaskContext};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

pub use crate::admission::AdmissionConfig;

/// A service policy callback: invoked once per job, after the job
/// reaches a terminal *run* state (`Completed`, `Cancelled`, `TimedOut`,
/// `Failed`) with its bookkeeping fully settled. Rejected submissions
/// never ran, so they do not fire the hook.
///
/// The hook runs on the thread that settles the job — usually a runtime
/// worker inside the group's quiescence latch — with **no service locks
/// held**. It must be fast and non-blocking; feed an observer (the
/// `grain-autotune` controller is the canonical consumer) rather than
/// doing work inline.
#[derive(Clone)]
pub struct PolicyHook(Arc<PolicyFn>);

/// The boxed callback type behind a [`PolicyHook`].
type PolicyFn = dyn Fn(&JobSpec, &JobOutcome) + Send + Sync;

impl PolicyHook {
    /// Wrap a callback as a service policy hook.
    pub fn new(f: impl Fn(&JobSpec, &JobOutcome) + Send + Sync + 'static) -> Self {
        Self(Arc::new(f))
    }

    pub(crate) fn call(&self, spec: &JobSpec, outcome: &JobOutcome) {
        (self.0)(spec, outcome)
    }
}

impl std::fmt::Debug for PolicyHook {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("PolicyHook(..)")
    }
}

/// Service configuration.
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Configuration of the underlying task runtime.
    pub runtime: RuntimeConfig,
    /// Admission control parameters.
    pub admission: AdmissionConfig,
    /// Overload-pressure control loop (adaptive budget + shedding).
    pub pressure: PressureConfig,
    /// Per-tenant circuit breakers.
    pub breaker: BreakerConfig,
    /// Dispatcher tick: the upper bound on how long admission or a
    /// deadline can lag the event that enabled it.
    pub poll_interval: Duration,
    /// Post-settlement policy hook (see [`PolicyHook`]). `None` (the
    /// default) leaves the settlement path exactly as before.
    pub policy: Option<PolicyHook>,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        Self {
            runtime: RuntimeConfig::default(),
            admission: AdmissionConfig::default(),
            pressure: PressureConfig::default(),
            breaker: BreakerConfig::default(),
            poll_interval: Duration::from_micros(500),
            policy: None,
        }
    }
}

impl ServiceConfig {
    /// Config with `workers` runtime workers and defaults elsewhere.
    pub fn with_workers(workers: usize) -> Self {
        Self {
            runtime: RuntimeConfig::with_workers(workers),
            ..Self::default()
        }
    }
}

struct Shared {
    runtime: Runtime,
    registry: Arc<Registry>,
    counters: ServiceCounters,
    queues: Mutex<FairQueues>,
    /// Wakes the dispatcher on submit, job completion, and shutdown.
    dispatch_cv: Condvar,
    /// Sum of admitted (unfinished) jobs' costs.
    budget_in_use: AtomicU64,
    /// Jobs popped from the queues but not yet pushed into `running`.
    /// Incremented under the queues lock, so `wait_all` (which holds
    /// that lock) cannot observe a job in neither structure.
    admitting: AtomicU64,
    /// Jobs admitted and not yet terminal, for deadline scanning.
    running: Mutex<Vec<Arc<JobCore>>>,
    /// Overload control loop: pressure signal, AIMD budget, shed picks.
    pressure: Arc<PressureController>,
    /// Per-tenant circuit breakers gating submission and retry.
    breakers: BreakerSet,
    ids: AtomicU64,
    shutdown: AtomicBool,
    config: ServiceConfig,
}

/// A multi-tenant job scheduler over one shared [`Runtime`]. See the
/// [crate docs](crate) for the lifecycle and an example.
pub struct JobService {
    shared: Arc<Shared>,
    dispatcher: Option<std::thread::JoinHandle<()>>,
}

impl JobService {
    /// Start a service (and its runtime and dispatcher thread).
    pub fn new(config: ServiceConfig) -> Self {
        let registry = Arc::new(Registry::new());
        let runtime = Runtime::new(config.runtime.clone());
        let queues = Mutex::new(FairQueues::new());
        let pressure = Arc::new(PressureController::new(
            config.pressure.clone(),
            config.admission.max_in_flight_tasks,
        ));
        pressure
            .register_counters(&registry)
            .expect("fresh registry cannot collide");
        let breakers = BreakerSet::new(config.breaker.clone(), Arc::clone(&registry));
        let shared = Arc::new_cyclic(|weak: &std::sync::Weak<Shared>| {
            let w1 = weak.clone();
            let w2 = weak.clone();
            let counters = ServiceCounters::register(
                &registry,
                move || {
                    w1.upgrade()
                        .map_or(0.0, |s: Arc<Shared>| s.queues.lock().len() as f64)
                },
                move || {
                    w2.upgrade().map_or(0.0, |s: Arc<Shared>| {
                        s.budget_in_use.load(Ordering::SeqCst) as f64
                    })
                },
            )
            .expect("fresh registry cannot collide");
            Shared {
                runtime,
                registry: Arc::clone(&registry),
                counters,
                queues,
                dispatch_cv: Condvar::new(),
                budget_in_use: AtomicU64::new(0),
                admitting: AtomicU64::new(0),
                running: Mutex::new(Vec::new()),
                pressure,
                breakers,
                ids: AtomicU64::new(0),
                shutdown: AtomicBool::new(false),
                config,
            }
        });
        let dispatcher = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("grain-service-dispatcher".into())
                .spawn(move || dispatcher_loop(shared))
                .expect("failed to spawn dispatcher thread")
        };
        Self {
            shared,
            dispatcher: Some(dispatcher),
        }
    }

    /// Service with `workers` runtime workers and default settings.
    pub fn with_workers(workers: usize) -> Self {
        Self::new(ServiceConfig::with_workers(workers))
    }

    /// Submit a job. `body` runs as the job's root task; every task it
    /// spawns through its [`TaskContext`] joins the job. The returned
    /// handle is live immediately — a rejected submission comes back
    /// already in [`JobState::Rejected`] with
    /// [`JobHandle::rejection`] set.
    pub fn submit(
        &self,
        spec: JobSpec,
        body: impl FnMut(&mut TaskContext<'_>) + Send + 'static,
    ) -> JobHandle {
        let shared = &self.shared;
        let id = JobId(shared.ids.fetch_add(1, Ordering::Relaxed));
        shared.counters.submitted.incr();
        let instance = format!("{}#{}", spec.name, id.0);
        let weight = shared.config.admission.weight_of(&spec.tenant);
        let group = grain_runtime::TaskGroup::new();
        // Each (name, id) instance is unique, so this cannot collide.
        let counters = JobCounters::register(&shared.registry, &instance, &group)
            .expect("unique job instance cannot collide");
        let core = Arc::new(JobCore::new(id, spec, group, counters, Box::new(body)));
        let handle = JobHandle {
            core: Arc::clone(&core),
        };
        if shared.shutdown.load(Ordering::SeqCst) {
            self.reject(&core, AdmissionError::ShuttingDown);
            return handle;
        }
        match shared.breakers.decide(&core.spec.tenant, Instant::now()) {
            BreakerDecision::Reject { retry_after } => {
                self.reject(
                    &core,
                    AdmissionError::BreakerOpen {
                        tenant: core.spec.tenant.clone(),
                        retry_after,
                    },
                );
                return handle;
            }
            BreakerDecision::Admit { probe } => {
                if probe {
                    core.probe.store(true, Ordering::SeqCst);
                }
            }
        }
        let mut queues = shared.queues.lock();
        if queues.len() >= shared.config.admission.max_queued_jobs {
            // Entries that went terminal while waiting (handle-cancelled
            // or deadline-expired) are only reaped lazily; don't let
            // them cause a spurious QueueFull.
            queues.reap_terminal();
        }
        let queued = queues.len();
        if queued >= shared.config.admission.max_queued_jobs {
            drop(queues);
            self.reject(
                &core,
                AdmissionError::QueueFull {
                    queued,
                    limit: shared.config.admission.max_queued_jobs,
                },
            );
            return handle;
        }
        queues.push(Arc::clone(&core), weight);
        drop(queues);
        shared.dispatch_cv.notify_all();
        handle
    }

    fn reject(&self, core: &Arc<JobCore>, why: AdmissionError) {
        *core.rejection.lock() = Some(why);
        if core.finish(JobState::Rejected) {
            self.shared.counters.rejected.incr();
        }
    }

    /// The shared counter registry: `/service/...` plus one
    /// `/jobs{name#id}/...` namespace per live job.
    pub fn registry(&self) -> &Arc<Registry> {
        &self.shared.registry
    }

    /// The service-level counters (raw handles and histograms).
    pub fn counters(&self) -> &ServiceCounters {
        &self.shared.counters
    }

    /// The underlying runtime (its own `/threads` counters live in
    /// [`Runtime::registry`]).
    pub fn runtime(&self) -> &Runtime {
        &self.shared.runtime
    }

    /// Jobs waiting for admission right now.
    pub fn queue_len(&self) -> usize {
        self.shared.queues.lock().len()
    }

    /// Jobs admitted and not yet finished.
    pub fn running_len(&self) -> usize {
        self.shared.running.lock().len()
    }

    /// The current smoothed overload-pressure snapshot.
    pub fn pressure_signal(&self) -> PressureSignal {
        self.shared.pressure.signal()
    }

    /// The state of `tenant`'s circuit breaker, or `None` before its
    /// first submission (or with breakers disabled).
    pub fn breaker_state(&self, tenant: &str) -> Option<BreakerState> {
        self.shared.breakers.state_of(tenant)
    }

    /// How many times `tenant`'s breaker has tripped open.
    pub fn breaker_opens(&self, tenant: &str) -> u64 {
        self.shared.breakers.opens_of(tenant)
    }

    /// Submissions rejected by circuit breakers across all tenants.
    pub fn breaker_rejections(&self) -> u64 {
        self.shared.breakers.total_rejected()
    }

    /// Block until no job is queued or running. New submissions during
    /// the wait extend it.
    pub fn wait_all(&self) {
        loop {
            {
                // Holding the queues lock excludes the dispatcher's
                // pop+`admitting`-increment critical section, so a job
                // in flight between the queues and `running` is always
                // visible through one of the three checks.
                let queues = self.shared.queues.lock();
                if queues.len() == 0
                    && self.shared.admitting.load(Ordering::SeqCst) == 0
                    && self.shared.running.lock().is_empty()
                {
                    return;
                }
            }
            std::thread::sleep(self.shared.config.poll_interval);
        }
    }
}

impl Drop for JobService {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        self.shared.dispatch_cv.notify_all();
        if let Some(t) = self.dispatcher.take() {
            let _ = t.join();
        }
        // Settlement hooks running on worker threads hold transient
        // `Arc<Shared>` clones (dropped as each group exits). If one of
        // those were the last reference, `Shared` — and the runtime
        // inside it — would be torn down *on a worker thread*, which
        // would then try to join itself. Wait the transients out so the
        // final drop always happens here.
        while Arc::strong_count(&self.shared) > 1 {
            std::thread::yield_now();
        }
        // Runtime drop then waits for any still-running tasks.
    }
}

/// One settlement of a quiescent job: decide the terminal state — or
/// send a faulted `RetryWithBackoff` job back through admission — meter
/// it, release the budget, and wake the dispatcher.
///
/// State priority: a deadline expiry beats an explicit cancel beats a
/// fault. `cancel_requested` (the client's flag) is what marks
/// `Cancelled`, *not* `group.is_cancelled()` — fail-fast cancels the
/// group internally on fault, and that must settle as `Failed`.
fn settle(shared: &Shared, core: &Arc<JobCore>) {
    let now = Instant::now();
    let fault = core.group.first_fault();
    let state = if core.timed_out.load(Ordering::SeqCst) {
        JobState::TimedOut
    } else if core.cancel_requested.load(Ordering::SeqCst) {
        JobState::Cancelled
    } else if fault.is_some() {
        // Every faulted attempt is a breaker failure, whether or not it
        // earns a retry — backoff must not hide a flapping tenant.
        let probe = core.probe.swap(false, Ordering::SeqCst);
        shared.breakers.record(&core.spec.tenant, true, probe, now);
        if try_requeue_for_retry(shared, core, now) {
            return; // not terminal: the job is queued for another attempt
        }
        JobState::Failed
    } else {
        JobState::Completed
    };
    if !core.finish_quiet(state) {
        return; // someone else settled it first
    }
    let probe = core.probe.swap(false, Ordering::SeqCst);
    match state {
        JobState::Completed => {
            shared.counters.completed.incr();
            shared.breakers.record(&core.spec.tenant, false, probe, now);
            if let Some(at) = *core.admitted_at.lock() {
                // Admitted-to-finished time feeds the shed slack estimate.
                shared
                    .pressure
                    .observe_service_time(now.saturating_duration_since(at));
            }
        }
        // Cancellation says nothing about the tenant's health.
        JobState::Cancelled => shared.counters.cancelled.incr(),
        JobState::TimedOut => {
            shared.counters.timed_out.incr();
            shared.breakers.record(&core.spec.tenant, true, probe, now);
        }
        // The fault branch above already recorded this failure.
        JobState::Failed => shared.counters.failed.incr(),
        _ => unreachable!("settle only produces terminal run states"),
    }
    shared
        .counters
        .turnaround
        .record(core.turnaround().as_nanos() as u64);
    shared.budget_in_use.fetch_sub(core.cost, Ordering::SeqCst);
    shared.running.lock().retain(|c| !Arc::ptr_eq(c, core));
    shared.dispatch_cv.notify_all();
    // Policy observation with no locks held and every counter settled,
    // before waiters wake — a submitter unblocked by wait() already
    // sees any grain adjustment this outcome caused.
    if let Some(hook) = &shared.config.policy {
        hook.call(&core.spec, &core.outcome_now(state));
    }
    // Waiters wake only now, with every counter above already settled.
    core.notify_waiters();
}

/// If the faulted job's policy allows another attempt, reset its fault
/// record, arm the backoff gate, and move it `Running → Queued` — budget
/// released so other jobs can use it while the backoff elapses. Returns
/// false when the job must fail instead (policy, attempts exhausted,
/// service shutdown, or the tenant's breaker is open).
fn try_requeue_for_retry(shared: &Shared, core: &Arc<JobCore>, now: Instant) -> bool {
    let FailurePolicy::RetryWithBackoff {
        max_attempts,
        base,
        cap,
    } = core.spec.failure_policy
    else {
        return false;
    };
    let attempt = core.attempts.load(Ordering::SeqCst);
    if attempt >= u64::from(max_attempts.max(1)) || shared.shutdown.load(Ordering::SeqCst) {
        return false;
    }
    // An open breaker already cut this tenant off; its faulted jobs do
    // not get to keep spending retry budget while it cools down.
    if !shared.breakers.retry_allowed(&core.spec.tenant, now) {
        return false;
    }
    shared.counters.retried.incr();
    core.retried.fetch_add(1, Ordering::SeqCst);
    *core.not_before.lock() = Some(now + backoff_delay(base, cap, attempt));
    core.group.reset_faults();
    core.set_state(JobState::Queued);
    shared.budget_in_use.fetch_sub(core.cost, Ordering::SeqCst);
    // `admitting` bridges the running→queues handoff so `wait_all`
    // (which checks queues, admitting, running under the queues lock)
    // can never observe the job in neither structure.
    shared.admitting.fetch_add(1, Ordering::SeqCst);
    shared.running.lock().retain(|c| !Arc::ptr_eq(c, core));
    let weight = shared.config.admission.weight_of(&core.spec.tenant);
    shared.queues.lock().push(Arc::clone(core), weight);
    shared.admitting.fetch_sub(1, Ordering::SeqCst);
    shared.dispatch_cv.notify_all();
    true
}

/// Exponential backoff before attempt `attempt + 1`: `base · 2^(n−1)`
/// after the n-th faulted attempt, capped at `cap`.
fn backoff_delay(base: Duration, cap: Duration, attempt: u64) -> Duration {
    let doublings = u32::try_from(attempt.saturating_sub(1).min(16)).expect("bounded by min(16)");
    base.saturating_mul(1u32 << doublings).min(cap)
}

/// Shed one queued job picked by the pressure controller: terminal
/// `Rejected` with [`AdmissionError::Shed`], metered on the `shed`
/// counter (not `rejected` — the two are disjoint so the conservation
/// invariant `admitted + rejected + shed + … = submitted` stays exact).
fn shed_job(shared: &Shared, core: &Arc<JobCore>, now: Instant) {
    *core.rejection.lock() = Some(AdmissionError::Shed {
        queued_for: now.saturating_duration_since(core.submitted_at),
        deadline: core.spec.deadline,
    });
    if core.finish_if_queued(JobState::Rejected) {
        shared.counters.shed.incr();
        core.group.cancel();
        core.notify_waiters();
    } else {
        // Lost the race to a concurrent cancel or admission between the
        // pick and here; don't leave a stale reason behind.
        *core.rejection.lock() = None;
    }
}

fn dispatcher_loop(shared: Arc<Shared>) {
    loop {
        let shutting_down = shared.shutdown.load(Ordering::SeqCst);
        if shutting_down {
            // Refuse everything still waiting, then leave once the
            // admitted jobs have settled.
            let drained = shared.queues.lock().drain();
            for core in drained {
                // A job queued for a retry attempt already ran and
                // faulted; shutdown ends it as Failed, not Rejected.
                if core.group.first_fault().is_some() {
                    if core.finish(JobState::Failed) {
                        shared.counters.failed.incr();
                    }
                    continue;
                }
                *core.rejection.lock() = Some(AdmissionError::ShuttingDown);
                if core.finish(JobState::Rejected) {
                    shared.counters.rejected.incr();
                }
            }
            if shared.running.lock().is_empty() {
                break;
            }
        }

        // Pressure: feed the control loop the runtime's cumulative
        // thread times and the queue state once per tick (rate-limited
        // internally to `PressureConfig::sample_every`).
        let now = Instant::now();
        {
            let rc = shared.runtime.counters();
            let queue_len = shared.queues.lock().len();
            shared.pressure.sample(
                now,
                rc.func_ns.sum(),
                rc.exec_ns.sum(),
                queue_len,
                shared.config.admission.max_queued_jobs,
            );
        }

        // Deadlines: scan admitted jobs and queue heads.
        {
            // Collect first, cancel after dropping the lock: cancel()
            // can retire the group's last in-flight member, running the
            // quiescence hook — and thus settle(), which takes
            // `running` — inline on this thread.
            let expired: Vec<Arc<JobCore>> = {
                let running = shared.running.lock();
                running
                    .iter()
                    .filter(|c| {
                        c.spec
                            .deadline
                            .is_some_and(|d| now.duration_since(c.submitted_at) >= d)
                    })
                    .map(Arc::clone)
                    .collect()
            };
            for core in expired {
                if !core.timed_out.swap(true, Ordering::SeqCst) {
                    core.group.cancel();
                    // settle() runs from the group's quiescence hook.
                }
            }
        }
        if shared.pressure.enabled() {
            // Shedding subsumes the queued-deadline scan: a queued job
            // whose sojourn (plus the estimated service time) has eaten
            // its deadline is picked here, along with CoDel head drops
            // under critical pressure.
            let sheds = {
                let queues = shared.queues.lock();
                shared.pressure.select_sheds(now, queues.iter())
            };
            for core in sheds {
                shed_job(&shared, &core, now);
                // The queue entry is reaped as a terminal head later.
            }
        } else {
            let queues = shared.queues.lock();
            let expired: Vec<Arc<JobCore>> = queues
                .iter()
                .filter(|c| {
                    c.spec
                        .deadline
                        .is_some_and(|d| now.duration_since(c.submitted_at) >= d)
                })
                .map(Arc::clone)
                .collect();
            drop(queues);
            for core in expired {
                // Never admitted: no budget to release, no group to drain.
                core.timed_out.store(true, Ordering::SeqCst);
                core.group.cancel();
                if core.finish(JobState::TimedOut) {
                    shared.counters.timed_out.incr();
                }
                // The queue entry is reaped as a terminal head later.
            }
        }

        // Admission: drain as many fair-share picks as the budget allows.
        if !shutting_down {
            loop {
                // The adaptive limit: the configured maximum when the
                // pressure loop is disabled or calm, shrunk under load.
                let max = shared.pressure.budget_limit();
                let now = Instant::now();
                let candidate = {
                    let mut queues = shared.queues.lock();
                    let core = queues.pop_next(|core| {
                        // A retrying job stays queued until its backoff
                        // gate opens; its tenant's FIFO order holds.
                        if core.not_before.lock().is_some_and(|t| t > now) {
                            return false;
                        }
                        let in_use = shared.budget_in_use.load(Ordering::SeqCst);
                        in_use == 0 || in_use + core.cost <= max
                    });
                    if core.is_some() {
                        // Under the queues lock: wait_all must never see
                        // the job in neither the queues nor `running`.
                        shared.admitting.fetch_add(1, Ordering::SeqCst);
                    }
                    core
                };
                match candidate {
                    None => break,
                    Some(core) => {
                        admit(&shared, core);
                        shared.admitting.fetch_sub(1, Ordering::SeqCst);
                    }
                }
            }
        }

        // Sleep until something changes (submission, settlement,
        // shutdown) or the next tick is due for deadline scanning.
        let mut queues = shared.queues.lock();
        shared
            .dispatch_cv
            .wait_for(&mut queues, shared.config.poll_interval);
    }
}

/// Reserve budget, start the root task, and arm the settlement hook.
/// Only the dispatcher thread calls this.
fn admit(shared: &Arc<Shared>, core: Arc<JobCore>) {
    // Queued → Admitted under the state mutex. Losing means the job went
    // terminal (handle-cancelled) between pop_next and here: drop it
    // without charging budget or starting anything — its waiters were
    // already notified by whoever finished it.
    if !core.try_admit() {
        return;
    }
    let now = Instant::now();
    shared.budget_in_use.fetch_add(core.cost, Ordering::SeqCst);
    *core.admitted_at.lock() = Some(now);
    *core.not_before.lock() = None;
    if let Some(deadline) = core.spec.deadline {
        // Deadline propagation: the group sees the job's remaining
        // budget, and workers skip members at dispatch once it is gone.
        core.group.set_budget_deadline(core.submitted_at + deadline);
    }
    let attempt = core.attempts.fetch_add(1, Ordering::SeqCst) + 1;
    if attempt == 1 {
        shared
            .counters
            .admission_latency
            .record(now.duration_since(core.submitted_at).as_nanos() as u64);
        shared.counters.admitted.incr();
        if core.spec.failure_policy == FailurePolicy::FailFast {
            // First fault cancels the rest of the job; settle() then
            // reads the fault record and finishes it as Failed. Weak:
            // an unfired hook must not keep the group alive forever.
            let group = Arc::downgrade(&core.group);
            core.group.on_fault(move |_| {
                if let Some(g) = group.upgrade() {
                    g.cancel();
                }
            });
        }
    }
    core.set_state(JobState::Running);
    shared.running.lock().push(Arc::clone(&core));
    let body_core = Arc::clone(&core);
    shared.runtime.spawn_in(
        &core.group,
        core.spec.priority.task_priority(),
        // The body stays in the core so a retry can run it again; only
        // one attempt is in flight at a time, so the lock is free.
        move |ctx| (*body_core.body.lock())(ctx),
    );
    // Arm settlement after the root is in the group (in-flight ≥ 1 until
    // the root exits, so the hook cannot fire before the DAG exists; if
    // the whole job already finished, on_quiescent runs settle inline).
    let hook_shared = Arc::clone(shared);
    let hook_core = Arc::clone(&core);
    core.group.on_quiescent(move || {
        settle(&hook_shared, &hook_core);
    });
}
