//! Per-tenant circuit breakers.
//!
//! One faulting tenant must not consume admission slots and retry budget
//! that starve everyone else. Each tenant gets a breaker with the classic
//! three-state machine:
//!
//! ```text
//!            failure ratio over the rolling window
//!            reaches failure_threshold
//!   Closed ────────────────────────────────▶ Open
//!     ▲                                       │ open_for elapses
//!     │ probe succeeds                        ▼
//!     ╰──────────────────────────────────  HalfOpen
//!                 probe fails: back to Open ──╯
//! ```
//!
//! * **Closed** — submissions pass; terminal outcomes (`Failed`,
//!   `TimedOut` = failure, `Completed` = success) feed a rolling window.
//!   Once the window holds at least [`BreakerConfig::min_samples`]
//!   outcomes and the failure ratio reaches
//!   [`BreakerConfig::failure_threshold`], the breaker trips.
//! * **Open** — submissions are rejected outright
//!   ([`crate::AdmissionError::BreakerOpen`]) for
//!   [`BreakerConfig::open_for`]; faulted attempts are not re-queued for
//!   retry either.
//! * **HalfOpen** — after the cooldown, *probe* submissions are admitted,
//!   rate-limited to one per [`BreakerConfig::probe_every`]. A probe that
//!   completes re-closes the breaker; a probe that fails re-opens it.
//!   Probes are time-spaced rather than counted so a probe that is
//!   cancelled or shed (no outcome signal) can never wedge the breaker.
//!
//! Per-tenant counters are registered lazily under
//! `/service{tenants/<name>}/breaker/{state,opens,rejected}` (`state`:
//! 0 = closed, 1 = open, 2 = half-open).

#![deny(clippy::unwrap_used)]

use grain_counters::derived::DerivedCounter;
use grain_counters::sync::Mutex;
use grain_counters::{RawCounter, Registry, ScopedRegistry, Unit};
use std::collections::{HashMap, VecDeque};
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Circuit-breaker configuration (per service; one breaker per tenant).
#[derive(Debug, Clone)]
pub struct BreakerConfig {
    /// Master switch; `false` admits everything and records nothing.
    pub enabled: bool,
    /// Rolling outcome window per tenant (newest `window` outcomes).
    pub window: usize,
    /// Minimum outcomes in the window before the breaker may trip.
    pub min_samples: usize,
    /// Failure ratio (failures / outcomes in window) that trips the
    /// breaker, in `0.0..=1.0`.
    pub failure_threshold: f64,
    /// Cooldown in `Open` before probes are allowed.
    pub open_for: Duration,
    /// Probe spacing in `HalfOpen`: at most one probe admission per this
    /// interval.
    pub probe_every: Duration,
}

impl Default for BreakerConfig {
    fn default() -> Self {
        Self {
            enabled: true,
            window: 32,
            min_samples: 8,
            failure_threshold: 0.5,
            open_for: Duration::from_millis(250),
            probe_every: Duration::from_millis(50),
        }
    }
}

/// The observable state of one tenant's breaker.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerState {
    /// Healthy: submissions pass, outcomes are recorded.
    Closed,
    /// Tripped: submissions are rejected until the cooldown elapses.
    Open,
    /// Cooling down: spaced probe submissions test the tenant.
    HalfOpen,
}

impl fmt::Display for BreakerState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BreakerState::Closed => write!(f, "closed"),
            BreakerState::Open => write!(f, "open"),
            BreakerState::HalfOpen => write!(f, "half-open"),
        }
    }
}

/// What the breaker says about one submission.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) enum BreakerDecision {
    /// Let the job in. `probe` marks a half-open trial whose outcome
    /// drives the next transition.
    Admit {
        /// True when this admission is a half-open probe.
        probe: bool,
    },
    /// Refuse the job; the tenant's breaker is open (or between probes).
    Reject {
        /// Time until the breaker next admits (cooldown or probe gap).
        retry_after: Duration,
    },
}

/// One tenant's breaker: state machine + rolling window + counters.
struct TenantBreaker {
    state: BreakerState,
    /// Rolling outcomes, `true` = failure; newest at the back.
    outcomes: VecDeque<bool>,
    /// When the breaker last entered `Open`.
    opened_at: Instant,
    /// When the last half-open probe was admitted.
    last_probe_at: Option<Instant>,
    /// Gauge backing `breaker/state` (0/1/2).
    state_gauge: Arc<AtomicU64>,
    /// Times the breaker tripped (`breaker/opens`).
    opens: Arc<RawCounter>,
    /// Submissions rejected by this breaker (`breaker/rejected`).
    rejected: Arc<RawCounter>,
    /// Keeps the per-tenant counters registered; unregisters on drop.
    _scope: ScopedRegistry,
}

impl TenantBreaker {
    fn new(registry: &Arc<Registry>, tenant: &str, now: Instant) -> Self {
        let scope = registry.scope("service", format!("tenants/{tenant}"));
        let state_gauge = Arc::new(AtomicU64::new(0));
        let opens = Arc::new(RawCounter::new());
        let rejected = Arc::new(RawCounter::new());
        // Registration can only collide if two services share one
        // registry, which already collides on `/service/*` before any
        // breaker exists; the in-process counters keep working either way.
        let g = Arc::clone(&state_gauge);
        let _ = scope.register(
            "breaker/state",
            DerivedCounter::new(Unit::Count, move || g.load(Ordering::SeqCst) as f64),
        );
        let o = Arc::clone(&opens);
        let _ = scope.register(
            "breaker/opens",
            DerivedCounter::new(Unit::Count, move || o.get() as f64),
        );
        let r = Arc::clone(&rejected);
        let _ = scope.register(
            "breaker/rejected",
            DerivedCounter::new(Unit::Count, move || r.get() as f64),
        );
        Self {
            state: BreakerState::Closed,
            outcomes: VecDeque::new(),
            opened_at: now,
            last_probe_at: None,
            state_gauge,
            opens,
            rejected,
            _scope: scope,
        }
    }

    fn set_state(&mut self, to: BreakerState) {
        self.state = to;
        let gauge = match to {
            BreakerState::Closed => 0,
            BreakerState::Open => 1,
            BreakerState::HalfOpen => 2,
        };
        self.state_gauge.store(gauge, Ordering::SeqCst);
    }

    fn trip(&mut self, now: Instant) {
        self.set_state(BreakerState::Open);
        self.opened_at = now;
        self.last_probe_at = None;
        self.outcomes.clear();
        self.opens.incr();
    }

    fn decide(&mut self, cfg: &BreakerConfig, now: Instant) -> BreakerDecision {
        match self.state {
            BreakerState::Closed => BreakerDecision::Admit { probe: false },
            BreakerState::Open => {
                let cooled = now.saturating_duration_since(self.opened_at) >= cfg.open_for;
                if cooled {
                    self.set_state(BreakerState::HalfOpen);
                    self.last_probe_at = Some(now);
                    BreakerDecision::Admit { probe: true }
                } else {
                    self.rejected.incr();
                    BreakerDecision::Reject {
                        retry_after: cfg
                            .open_for
                            .saturating_sub(now.saturating_duration_since(self.opened_at)),
                    }
                }
            }
            BreakerState::HalfOpen => {
                let since = self.last_probe_at.map(|t| now.saturating_duration_since(t));
                match since {
                    Some(s) if s < cfg.probe_every => {
                        self.rejected.incr();
                        BreakerDecision::Reject {
                            retry_after: cfg.probe_every - s,
                        }
                    }
                    _ => {
                        self.last_probe_at = Some(now);
                        BreakerDecision::Admit { probe: true }
                    }
                }
            }
        }
    }

    fn record(&mut self, cfg: &BreakerConfig, failure: bool, probe: bool, now: Instant) {
        match self.state {
            BreakerState::Closed => {
                self.outcomes.push_back(failure);
                while self.outcomes.len() > cfg.window {
                    self.outcomes.pop_front();
                }
                let n = self.outcomes.len();
                if n >= cfg.min_samples.max(1) {
                    let failures = self.outcomes.iter().filter(|f| **f).count();
                    if failures as f64 / n as f64 >= cfg.failure_threshold {
                        self.trip(now);
                    }
                }
            }
            BreakerState::HalfOpen => {
                // Only probe outcomes drive the transition; stragglers
                // admitted before the trip are ignored here.
                if probe {
                    if failure {
                        self.trip(now);
                    } else {
                        self.set_state(BreakerState::Closed);
                        self.outcomes.clear();
                        self.last_probe_at = None;
                    }
                }
            }
            BreakerState::Open => {}
        }
    }
}

/// All tenants' breakers for one service.
pub(crate) struct BreakerSet {
    cfg: BreakerConfig,
    registry: Arc<Registry>,
    tenants: Mutex<HashMap<String, TenantBreaker>>,
}

impl BreakerSet {
    pub(crate) fn new(cfg: BreakerConfig, registry: Arc<Registry>) -> Self {
        Self {
            cfg,
            registry,
            tenants: Mutex::new(HashMap::new()),
        }
    }

    /// Gate one submission for `tenant`.
    pub(crate) fn decide(&self, tenant: &str, now: Instant) -> BreakerDecision {
        if !self.cfg.enabled {
            return BreakerDecision::Admit { probe: false };
        }
        let mut g = self.tenants.lock();
        let b = g
            .entry(tenant.to_owned())
            .or_insert_with(|| TenantBreaker::new(&self.registry, tenant, now));
        b.decide(&self.cfg, now)
    }

    /// Record a terminal outcome for `tenant`. `failure` is true for
    /// `Failed`/`TimedOut` (and for each faulted attempt that enters
    /// retry backoff); completions are successes. Cancelled and rejected
    /// jobs are neutral — the caller must not report them.
    pub(crate) fn record(&self, tenant: &str, failure: bool, probe: bool, now: Instant) {
        if !self.cfg.enabled {
            return;
        }
        let mut g = self.tenants.lock();
        let b = g
            .entry(tenant.to_owned())
            .or_insert_with(|| TenantBreaker::new(&self.registry, tenant, now));
        b.record(&self.cfg, failure, probe, now);
    }

    /// May a faulted attempt of `tenant` re-enter the queue? `false`
    /// while the breaker is open and still cooling — a flapping tenant
    /// does not get to spend retry budget the breaker already cut off.
    pub(crate) fn retry_allowed(&self, tenant: &str, now: Instant) -> bool {
        if !self.cfg.enabled {
            return true;
        }
        let g = self.tenants.lock();
        match g.get(tenant) {
            Some(b) if b.state == BreakerState::Open => {
                now.saturating_duration_since(b.opened_at) >= self.cfg.open_for
            }
            _ => true,
        }
    }

    /// The current state of `tenant`'s breaker (`None` before its first
    /// submission).
    pub(crate) fn state_of(&self, tenant: &str) -> Option<BreakerState> {
        self.tenants.lock().get(tenant).map(|b| b.state)
    }

    /// Times `tenant`'s breaker has tripped.
    pub(crate) fn opens_of(&self, tenant: &str) -> u64 {
        self.tenants.lock().get(tenant).map_or(0, |b| b.opens.get())
    }

    /// Submissions rejected across all tenants' breakers.
    pub(crate) fn total_rejected(&self) -> u64 {
        self.tenants.lock().values().map(|b| b.rejected.get()).sum()
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    fn cfg() -> BreakerConfig {
        BreakerConfig {
            enabled: true,
            window: 8,
            min_samples: 4,
            failure_threshold: 0.5,
            open_for: Duration::from_millis(100),
            probe_every: Duration::from_millis(20),
        }
    }

    fn set() -> BreakerSet {
        BreakerSet::new(cfg(), Arc::new(Registry::new()))
    }

    #[test]
    fn trips_on_failure_ratio_and_cools_down() {
        let s = set();
        let t0 = Instant::now();
        // Below min_samples: no trip even at 100% failures.
        for _ in 0..3 {
            s.record("a", true, false, t0);
        }
        assert_eq!(s.state_of("a"), Some(BreakerState::Closed));
        s.record("a", true, false, t0);
        assert_eq!(s.state_of("a"), Some(BreakerState::Open));
        assert_eq!(s.opens_of("a"), 1);
        // Open: submissions rejected until the cooldown elapses.
        match s.decide("a", t0 + Duration::from_millis(10)) {
            BreakerDecision::Reject { retry_after } => {
                assert!(retry_after <= Duration::from_millis(90));
            }
            other => panic!("expected Reject, got {other:?}"),
        }
        // Cooled: the next submission is a probe.
        assert_eq!(
            s.decide("a", t0 + Duration::from_millis(120)),
            BreakerDecision::Admit { probe: true }
        );
        assert_eq!(s.state_of("a"), Some(BreakerState::HalfOpen));
    }

    #[test]
    fn successful_probe_recloses_failed_probe_reopens() {
        let s = set();
        let t0 = Instant::now();
        for _ in 0..4 {
            s.record("a", true, false, t0);
        }
        let t1 = t0 + Duration::from_millis(120);
        assert_eq!(s.decide("a", t1), BreakerDecision::Admit { probe: true });
        s.record("a", true, true, t1 + Duration::from_millis(1));
        assert_eq!(s.state_of("a"), Some(BreakerState::Open));
        assert_eq!(s.opens_of("a"), 2);
        let t2 = t1 + Duration::from_millis(130);
        assert_eq!(s.decide("a", t2), BreakerDecision::Admit { probe: true });
        s.record("a", false, true, t2 + Duration::from_millis(1));
        assert_eq!(s.state_of("a"), Some(BreakerState::Closed));
        // A re-closed breaker starts from a clean window.
        s.record("a", true, false, t2 + Duration::from_millis(2));
        assert_eq!(s.state_of("a"), Some(BreakerState::Closed));
    }

    #[test]
    fn half_open_probes_are_time_spaced() {
        let s = set();
        let t0 = Instant::now();
        for _ in 0..4 {
            s.record("a", true, false, t0);
        }
        let t1 = t0 + Duration::from_millis(120);
        assert_eq!(s.decide("a", t1), BreakerDecision::Admit { probe: true });
        // Immediately after a probe: rejected (spacing).
        assert!(matches!(
            s.decide("a", t1 + Duration::from_millis(1)),
            BreakerDecision::Reject { .. }
        ));
        // After probe_every: a new probe, even though the first probe's
        // outcome never arrived (cancelled/shed probes cannot wedge us).
        assert_eq!(
            s.decide("a", t1 + Duration::from_millis(25)),
            BreakerDecision::Admit { probe: true }
        );
    }

    #[test]
    fn non_probe_stragglers_do_not_flip_a_half_open_breaker() {
        let s = set();
        let t0 = Instant::now();
        for _ in 0..4 {
            s.record("a", true, false, t0);
        }
        let t1 = t0 + Duration::from_millis(120);
        assert_eq!(s.decide("a", t1), BreakerDecision::Admit { probe: true });
        // A straggler admitted before the trip finishes now: ignored.
        s.record("a", false, false, t1 + Duration::from_millis(1));
        assert_eq!(s.state_of("a"), Some(BreakerState::HalfOpen));
    }

    #[test]
    fn retry_gate_follows_the_cooldown() {
        let s = set();
        let t0 = Instant::now();
        assert!(s.retry_allowed("a", t0), "unknown tenant may retry");
        for _ in 0..4 {
            s.record("a", true, false, t0);
        }
        assert!(!s.retry_allowed("a", t0 + Duration::from_millis(10)));
        assert!(s.retry_allowed("a", t0 + Duration::from_millis(120)));
    }

    #[test]
    fn tenants_are_isolated_and_counters_registered() {
        let reg = Arc::new(Registry::new());
        let s = BreakerSet::new(cfg(), Arc::clone(&reg));
        let t0 = Instant::now();
        for _ in 0..4 {
            s.record("bad", true, false, t0);
        }
        assert_eq!(
            s.decide("good", t0),
            BreakerDecision::Admit { probe: false }
        );
        assert_eq!(s.state_of("good"), Some(BreakerState::Closed));
        assert_eq!(s.state_of("bad"), Some(BreakerState::Open));
        assert_eq!(
            reg.query("/service{tenants/bad}/breaker/state")
                .unwrap()
                .as_count(),
            1
        );
        assert_eq!(
            reg.query("/service{tenants/bad}/breaker/opens")
                .unwrap()
                .as_count(),
            1
        );
        let _ = s.decide("bad", t0 + Duration::from_millis(5));
        assert_eq!(
            reg.query("/service{tenants/bad}/breaker/rejected")
                .unwrap()
                .as_count(),
            1
        );
    }

    #[test]
    fn disabled_breakers_admit_everything() {
        let s = BreakerSet::new(
            BreakerConfig {
                enabled: false,
                ..cfg()
            },
            Arc::new(Registry::new()),
        );
        let t0 = Instant::now();
        for _ in 0..32 {
            s.record("a", true, false, t0);
        }
        assert_eq!(s.decide("a", t0), BreakerDecision::Admit { probe: false });
        assert_eq!(s.state_of("a"), None, "disabled set records nothing");
    }
}
