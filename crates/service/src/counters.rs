//! Counter surfaces of the service layer.
//!
//! Two namespaces on one shared [`Registry`]:
//!
//! * `/jobs{name#id}/threads/...` — one scope per job, mirroring the
//!   paper's per-thread counter names (cumulative task count, cumulative
//!   execution time) but fed from the job's [`TaskGroup`], so each
//!   tenant's work is metered in isolation;
//! * `/service/...` — service-wide lifecycle counts, instantaneous queue
//!   length and budget use, and log₂ histograms of admission latency and
//!   turnaround.

use grain_counters::derived::DerivedCounter;
use grain_counters::{
    CounterValue, LogHistogram, RawCounter, Registry, RegistryError, ScopedRegistry, Unit,
};
use grain_runtime::TaskGroup;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Per-job counters: a scoped `/jobs{name#id}` namespace of derived
/// counters reading the job's task group. Registered at submission,
/// retired when the last [`crate::JobHandle`] (and the service's own
/// reference) drops.
pub struct JobCounters {
    scope: ScopedRegistry,
    /// Retry count, shared with the job core; feeds `tasks/retried`.
    retried: Arc<AtomicU64>,
}

impl JobCounters {
    /// Register the job counter surface for `instance` (`name#id`),
    /// backed by `group`.
    pub(crate) fn register(
        registry: &Arc<Registry>,
        instance: &str,
        group: &Arc<TaskGroup>,
    ) -> Result<Self, RegistryError> {
        let scope = registry.scope("jobs", instance);
        let g = Arc::clone(group);
        scope.register(
            "threads/count/cumulative",
            DerivedCounter::new(Unit::Count, move || g.completed() as f64),
        )?;
        let g = Arc::clone(group);
        scope.register(
            "threads/count/spawned",
            DerivedCounter::new(Unit::Count, move || g.spawned() as f64),
        )?;
        let g = Arc::clone(group);
        scope.register(
            "threads/count/skipped",
            DerivedCounter::new(Unit::Count, move || g.skipped() as f64),
        )?;
        let g = Arc::clone(group);
        scope.register(
            "threads/count/in-flight",
            DerivedCounter::new(Unit::Count, move || g.in_flight() as f64),
        )?;
        let g = Arc::clone(group);
        scope.register(
            "threads/count/faulted",
            DerivedCounter::new(Unit::Count, move || g.faulted() as f64),
        )?;
        let retried = Arc::new(AtomicU64::new(0));
        let r = Arc::clone(&retried);
        scope.register(
            "tasks/retried",
            DerivedCounter::new(Unit::Count, move || r.load(Ordering::SeqCst) as f64),
        )?;
        let g = Arc::clone(group);
        scope.register(
            "threads/time/cumulative-exec",
            DerivedCounter::new(Unit::Nanoseconds, move || g.exec_ns() as f64),
        )?;
        let g = Arc::clone(group);
        scope.register(
            "threads/time/average",
            DerivedCounter::new(Unit::Nanoseconds, move || {
                let n = g.completed();
                if n == 0 {
                    0.0
                } else {
                    g.exec_ns() as f64 / n as f64
                }
            }),
        )?;
        Ok(Self { scope, retried })
    }

    /// The shared retry counter backing `tasks/retried`; the job core
    /// increments it on each re-admission.
    pub(crate) fn retried_handle(&self) -> Arc<AtomicU64> {
        Arc::clone(&self.retried)
    }

    /// Full registry paths of this job's counters.
    pub fn paths(&self) -> Vec<String> {
        self.scope.paths()
    }

    /// The `/jobs{name#id}` prefix.
    pub fn prefix(&self) -> String {
        self.scope.prefix()
    }

    /// Sample one of the job's counters by short name, e.g.
    /// `threads/count/cumulative`.
    pub fn query(&self, name: &str) -> Result<CounterValue, RegistryError> {
        self.scope.query(name)
    }
}

/// Service-wide counters under `/service/...`.
///
/// The raw lifecycle counts are public so the dispatcher can increment
/// them without a registry lookup; the histograms give admission-latency
/// and turnaround distributions in power-of-two nanosecond buckets
/// (query percentiles with [`LogHistogram::quantile_floor`]).
pub struct ServiceCounters {
    /// Jobs ever submitted (including rejected ones).
    pub submitted: Arc<RawCounter>,
    /// Jobs that passed admission control.
    pub admitted: Arc<RawCounter>,
    /// Jobs that finished as `Completed`.
    pub completed: Arc<RawCounter>,
    /// Jobs that finished as `Cancelled`.
    pub cancelled: Arc<RawCounter>,
    /// Jobs that finished as `TimedOut`.
    pub timed_out: Arc<RawCounter>,
    /// Jobs that finished as `Failed` (task fault, not retried further).
    pub failed: Arc<RawCounter>,
    /// Faulted attempts re-admitted under `RetryWithBackoff`.
    pub retried: Arc<RawCounter>,
    /// Jobs refused by admission control.
    pub rejected: Arc<RawCounter>,
    /// Queued jobs dropped by the overload shedder (disjoint from
    /// `rejected`: `submitted = admitted + rejected + shed + …`).
    pub shed: Arc<RawCounter>,
    /// Submission-to-admission latency, log₂ ns buckets.
    pub admission_latency: Arc<LogHistogram>,
    /// Submission-to-finish turnaround of admitted jobs, log₂ ns buckets.
    pub turnaround: Arc<LogHistogram>,
}

impl ServiceCounters {
    /// Register the `/service` namespace on `registry`. `queue_len` and
    /// `budget_in_use` are sampled live for the instantaneous gauges.
    pub(crate) fn register(
        registry: &Registry,
        queue_len: impl Fn() -> f64 + Send + Sync + 'static,
        budget_in_use: impl Fn() -> f64 + Send + Sync + 'static,
    ) -> Result<Self, RegistryError> {
        let this = Self {
            submitted: Arc::new(RawCounter::new()),
            admitted: Arc::new(RawCounter::new()),
            completed: Arc::new(RawCounter::new()),
            cancelled: Arc::new(RawCounter::new()),
            timed_out: Arc::new(RawCounter::new()),
            failed: Arc::new(RawCounter::new()),
            retried: Arc::new(RawCounter::new()),
            rejected: Arc::new(RawCounter::new()),
            shed: Arc::new(RawCounter::new()),
            admission_latency: Arc::new(LogHistogram::new()),
            turnaround: Arc::new(LogHistogram::new()),
        };
        let raws: [(&str, &Arc<RawCounter>); 9] = [
            ("jobs/submitted", &this.submitted),
            ("jobs/admitted", &this.admitted),
            ("jobs/completed", &this.completed),
            ("jobs/cancelled", &this.cancelled),
            ("jobs/timed-out", &this.timed_out),
            ("jobs/failed", &this.failed),
            ("jobs/retried", &this.retried),
            ("jobs/rejected", &this.rejected),
            ("jobs/shed", &this.shed),
        ];
        for (name, raw) in raws {
            let raw = Arc::clone(raw);
            registry.register(
                &format!("/service/{name}"),
                DerivedCounter::new(Unit::Count, move || raw.get() as f64),
            )?;
        }
        registry.register(
            "/service/queue/length",
            DerivedCounter::new(Unit::Count, queue_len),
        )?;
        registry.register(
            "/service/tasks/budget-in-use",
            DerivedCounter::new(Unit::Count, budget_in_use),
        )?;
        let h = Arc::clone(&this.admission_latency);
        registry.register(
            "/service/time/admission-latency",
            DerivedCounter::new(Unit::Nanoseconds, move || h.mean()),
        )?;
        let h = Arc::clone(&this.turnaround);
        registry.register(
            "/service/time/turnaround",
            DerivedCounter::new(Unit::Nanoseconds, move || h.mean()),
        )?;
        Ok(this)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn job_counters_read_their_group() {
        let reg = Arc::new(Registry::new());
        let group = TaskGroup::new();
        let jc = JobCounters::register(&reg, "render#1", &group).unwrap();
        group.enter();
        group.enter();
        group.exit_completed();
        assert_eq!(jc.query("threads/count/spawned").unwrap().as_count(), 2);
        assert_eq!(jc.query("threads/count/cumulative").unwrap().as_count(), 1);
        assert_eq!(jc.query("threads/count/in-flight").unwrap().as_count(), 1);
        assert_eq!(
            reg.query("/jobs{render#1}/threads/count/cumulative")
                .unwrap()
                .as_count(),
            1
        );
        assert_eq!(jc.prefix(), "/jobs{render#1}");
        assert_eq!(jc.paths().len(), 8);
        group.exit_faulted(grain_runtime::TaskError::Panicked {
            message: "boom".into(),
        });
        assert_eq!(jc.query("threads/count/faulted").unwrap().as_count(), 1);
        jc.retried_handle().fetch_add(2, Ordering::SeqCst);
        assert_eq!(jc.query("tasks/retried").unwrap().as_count(), 2);
    }

    #[test]
    fn service_counters_register_and_sample() {
        let reg = Registry::new();
        let sc = ServiceCounters::register(&reg, || 3.0, || 17.0).unwrap();
        sc.submitted.add(5);
        sc.rejected.incr();
        assert_eq!(reg.query("/service/jobs/submitted").unwrap().as_count(), 5);
        assert_eq!(reg.query("/service/jobs/rejected").unwrap().as_count(), 1);
        assert_eq!(reg.query("/service/queue/length").unwrap().as_count(), 3);
        assert_eq!(
            reg.query("/service/tasks/budget-in-use")
                .unwrap()
                .as_count(),
            17
        );
        sc.admission_latency.record(1000);
        assert!(reg.query("/service/time/admission-latency").unwrap().value > 0.0);
    }
}
