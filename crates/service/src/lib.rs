//! # grain-service — a multi-tenant job-serving layer
//!
//! The paper's runtime executes one application at a time: a `main` owns
//! the [`grain_runtime::Runtime`], spawns its task DAG, and drains it.
//! This crate turns that runtime into a *served* resource: a
//! [`JobService`] accepts task DAGs as first-class **jobs** — each with a
//! tenant, a priority, an optional deadline, and its own counter
//! namespace — and multiplexes them onto one shared runtime.
//!
//! ## Lifecycle
//!
//! ```text
//! Queued ──▶ Admitted ──▶ Running ──▶ Completed
//!    ▲                       ├──────▶ Cancelled   (JobHandle::cancel)
//!    │                       ├──────▶ TimedOut    (deadline expiry)
//!    │                       ├──────▶ Failed      (task fault, FailurePolicy)
//!    │                       └──╮
//!    ╰──────── retry ───────────╯                 (RetryWithBackoff)
//!    └──────────────────────────────▶ Rejected    (admission control)
//! ```
//!
//! * **Admission control** ([`AdmissionConfig`]) bounds the queued-job
//!   count (backpressure: excess submissions come back `Rejected`) and
//!   the total in-flight task budget, and drains tenant queues in
//!   weighted fair-share (stride) order.
//! * **Overload resilience**: a pressure control loop
//!   ([`PressureConfig`]) folds the runtime's overhead fraction and the
//!   queue fill into a smoothed [`PressureSignal`], adaptively shrinks
//!   the in-flight budget (AIMD) under sustained overhead, and sheds
//!   queued jobs that can no longer meet their deadlines
//!   ([`RejectReason::Shed`]); per-tenant circuit breakers
//!   ([`BreakerConfig`]) trip on rolling failure rate so one flapping
//!   tenant cannot starve the others' retry budget.
//! * **Cancellation and deadlines** ride on
//!   [`grain_runtime::TaskGroup`]: every task a job spawns joins the
//!   job's group, so [`JobHandle::cancel`] skips the job's queued tasks
//!   and releases its dormant dataflow nodes without touching other
//!   jobs, and [`JobHandle::wait`] joins *one job*, not the runtime.
//! * **Per-job counters** live under `/jobs{name#id}/threads/...` beside
//!   service-wide `/service/...` counters on the service's
//!   [`Registry`](grain_counters::Registry).
//! * **Failure policies** ([`FailurePolicy`]) decide what a task fault
//!   (an isolated panic, or an inherited dependency fault) does to its
//!   job: fail fast (default), let the remaining tasks finish, or retry
//!   the whole job with exponential backoff through admission control.
//!
//! ## Example
//!
//! ```
//! use grain_service::{JobService, JobSpec};
//!
//! let service = JobService::with_workers(2);
//! let job = service.submit(JobSpec::new("sum", "tenant-a"), |ctx| {
//!     for i in 0..8u64 {
//!         ctx.spawn(move |_| {
//!             std::hint::black_box(i * i);
//!         });
//!     }
//! });
//! let outcome = job.wait();
//! assert_eq!(outcome.tasks_completed, 9); // root + 8 children
//! ```

pub mod admission;
pub mod breaker;
pub mod counters;
pub mod job;
pub mod pressure;
pub mod service;

pub use admission::{AdmissionConfig, AdmissionError, RejectReason};
pub use breaker::{BreakerConfig, BreakerState};
pub use counters::{JobCounters, ServiceCounters};
pub use job::{
    FailurePolicy, JobHandle, JobId, JobOutcome, JobPriority, JobShape, JobSpec, JobState,
};
pub use pressure::{PressureConfig, PressureLevel, PressureSignal};
pub use service::{JobService, PolicyHook, ServiceConfig};

// Re-export the layers underneath so service users need one dependency.
pub use grain_counters;
pub use grain_runtime;
