//! Admission control: queue bounds, a task budget, and weighted
//! fair-share ordering across tenants.
//!
//! Three mechanisms gate the path from `submit` to `Running`:
//!
//! 1. **Backpressure rejection** — at most
//!    [`AdmissionConfig::max_queued_jobs`] jobs may wait; beyond that,
//!    submissions finish immediately as `Rejected`.
//! 2. **A bounded in-flight task budget** — each job costs its
//!    (client-estimated) task count; jobs are admitted only while the
//!    sum of admitted costs stays within
//!    [`AdmissionConfig::max_in_flight_tasks`]. One job is always
//!    admissible when nothing is running, so an over-budget job cannot
//!    deadlock the service.
//! 3. **Weighted fair share** — waiting jobs are drawn from per-tenant
//!    FIFO queues by stride scheduling: each admission advances the
//!    tenant's virtual pass by `STRIDE / weight`, and the tenant with the
//!    smallest pass goes next. A tenant with weight 2 is admitted twice
//!    as often as a tenant with weight 1 under contention; idle tenants
//!    rejoin at the current front rather than accumulating credit.

#![deny(clippy::unwrap_used)]

use crate::job::JobCore;
use std::collections::{BTreeMap, VecDeque};
use std::fmt;
use std::sync::Arc;
use std::time::Duration;

/// Admission-control configuration.
#[derive(Debug, Clone)]
pub struct AdmissionConfig {
    /// Budget: the sum of admitted jobs' estimated task counts may not
    /// exceed this (except that a single job is always admissible when
    /// the budget is idle).
    pub max_in_flight_tasks: u64,
    /// Bound on jobs waiting in tenant queues; submissions beyond it are
    /// rejected.
    pub max_queued_jobs: usize,
    /// Fair-share weight for tenants not listed in `tenant_weights`.
    pub default_tenant_weight: u32,
    /// Per-tenant fair-share weights (tenant name → weight ≥ 1).
    pub tenant_weights: Vec<(String, u32)>,
}

impl Default for AdmissionConfig {
    fn default() -> Self {
        Self {
            max_in_flight_tasks: 4096,
            max_queued_jobs: 256,
            default_tenant_weight: 1,
            tenant_weights: Vec::new(),
        }
    }
}

impl AdmissionConfig {
    /// The weight of `tenant` (listed weight, else the default; ≥ 1).
    pub fn weight_of(&self, tenant: &str) -> u32 {
        self.tenant_weights
            .iter()
            .find(|(t, _)| t == tenant)
            .map(|(_, w)| *w)
            .unwrap_or(self.default_tenant_weight)
            .max(1)
    }
}

/// The coarse *class* of a refusal — what a dashboard or audit log keys
/// on. The full [`AdmissionError`] carries the details; this enum is the
/// stable, cheap-to-match discriminant surfaced in
/// [`crate::job::JobOutcome::reject_reason`] so callers never have to
/// conflate "the queue was full" with "your job was shed" or "your
/// tenant's breaker is open" — three conditions with three different
/// correct client responses (back off, resubmit with slack, stop).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RejectReason {
    /// Backpressure: the waiting-job bound was hit at submit time.
    QueueFull,
    /// Load shedding: the pressure controller dropped the job from the
    /// queue (its deadline slack was already spent, or it was the oldest
    /// entry under critical pressure).
    Shed,
    /// The tenant's circuit breaker was open at submit time.
    BreakerOpen,
    /// The service was shutting down.
    ShuttingDown,
    /// The fleet gateway had too little live capacity to place the job
    /// before its deadline: alive workers were below the configured
    /// quorum, so the job was shed rather than left to hang.
    FleetUnavailable {
        /// Suggested client back-off before resubmitting.
        retry_after: Duration,
    },
}

impl fmt::Display for RejectReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RejectReason::QueueFull => write!(f, "queue-full"),
            RejectReason::Shed => write!(f, "shed"),
            RejectReason::BreakerOpen => write!(f, "breaker-open"),
            RejectReason::ShuttingDown => write!(f, "shutting-down"),
            RejectReason::FleetUnavailable { retry_after } => {
                write!(f, "fleet-unavailable (retry in {retry_after:?})")
            }
        }
    }
}

/// Why a submission was refused (or a queued job later dropped).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AdmissionError {
    /// The waiting-job bound was hit; retry later.
    QueueFull {
        /// Jobs waiting when the submission arrived.
        queued: usize,
        /// The configured bound.
        limit: usize,
    },
    /// The pressure controller shed the job from the queue: by the time
    /// it could have been admitted it could no longer meet its deadline
    /// (or it was the oldest entry under critical pressure).
    Shed {
        /// How long the job had been waiting when it was shed.
        queued_for: Duration,
        /// The job's deadline, if it had one.
        deadline: Option<Duration>,
    },
    /// The tenant's circuit breaker is open after repeated
    /// failures/timeouts; resubmit after the cooldown.
    BreakerOpen {
        /// The owning tenant.
        tenant: String,
        /// Time until the breaker next admits a probe.
        retry_after: Duration,
    },
    /// The service is shutting down and accepts no new work.
    ShuttingDown,
    /// The fleet gateway is below its capacity quorum: too few worker
    /// localities are alive (and not draining) to place the job before
    /// its deadline, so it is shed instead of hanging.
    FleetUnavailable {
        /// Worker localities currently alive and accepting.
        alive: usize,
        /// The minimum the gateway's quorum policy requires.
        quorum: usize,
        /// Suggested client back-off before resubmitting.
        retry_after: Duration,
    },
}

impl AdmissionError {
    /// The coarse class of this refusal.
    pub fn reason(&self) -> RejectReason {
        match self {
            AdmissionError::QueueFull { .. } => RejectReason::QueueFull,
            AdmissionError::Shed { .. } => RejectReason::Shed,
            AdmissionError::BreakerOpen { .. } => RejectReason::BreakerOpen,
            AdmissionError::ShuttingDown => RejectReason::ShuttingDown,
            AdmissionError::FleetUnavailable { retry_after, .. } => {
                RejectReason::FleetUnavailable {
                    retry_after: *retry_after,
                }
            }
        }
    }
}

impl fmt::Display for AdmissionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AdmissionError::QueueFull { queued, limit } => {
                write!(f, "admission queue full ({queued} waiting, limit {limit})")
            }
            AdmissionError::Shed {
                queued_for,
                deadline,
            } => match deadline {
                Some(d) => write!(
                    f,
                    "shed under pressure after {queued_for:?} in queue (deadline {d:?})"
                ),
                None => write!(f, "shed under pressure after {queued_for:?} in queue"),
            },
            AdmissionError::BreakerOpen {
                tenant,
                retry_after,
            } => {
                write!(
                    f,
                    "circuit breaker open for tenant {tenant:?} (retry in {retry_after:?})"
                )
            }
            AdmissionError::ShuttingDown => write!(f, "service is shutting down"),
            AdmissionError::FleetUnavailable {
                alive,
                quorum,
                retry_after,
            } => write!(
                f,
                "fleet below capacity quorum ({alive} alive, quorum {quorum}; retry in {retry_after:?})"
            ),
        }
    }
}

impl std::error::Error for AdmissionError {}

/// Stride-scheduling constant: passes advance by `STRIDE / weight`.
const STRIDE: u64 = 1 << 20;

struct TenantQueue {
    weight: u32,
    pass: u64,
    jobs: VecDeque<Arc<JobCore>>,
}

/// Per-tenant FIFO queues drained in weighted stride order. Internal to
/// the service; guarded by the dispatcher's mutex.
pub(crate) struct FairQueues {
    tenants: BTreeMap<String, TenantQueue>,
    queued: usize,
}

impl FairQueues {
    pub(crate) fn new() -> Self {
        Self {
            tenants: BTreeMap::new(),
            queued: 0,
        }
    }

    /// Jobs currently waiting (including not-yet-reaped cancelled ones).
    pub(crate) fn len(&self) -> usize {
        self.queued
    }

    /// Enqueue a job for its tenant, creating the tenant's queue at the
    /// current minimum pass so it cannot leapfrog established tenants'
    /// history nor starve behind it.
    pub(crate) fn push(&mut self, core: Arc<JobCore>, weight: u32) {
        let floor = self
            .tenants
            .values()
            .filter(|t| !t.jobs.is_empty())
            .map(|t| t.pass)
            .min()
            .unwrap_or(0);
        let entry = self
            .tenants
            .entry(core.spec.tenant.clone())
            .or_insert_with(|| TenantQueue {
                weight,
                pass: floor,
                jobs: VecDeque::new(),
            });
        // A tenant returning from idleness rejoins at the current floor.
        if entry.jobs.is_empty() && entry.pass < floor {
            entry.pass = floor;
        }
        entry.jobs.push_back(core);
        self.queued += 1;
    }

    /// Discard every already-terminal entry (cancelled or expired while
    /// waiting) so they neither block their tenant's stride slot nor
    /// count against the queue bound. FIFO order of the live entries is
    /// preserved. Returns how many were removed.
    pub(crate) fn reap_terminal(&mut self) -> usize {
        let mut reaped = 0;
        for t in self.tenants.values_mut() {
            let before = t.jobs.len();
            t.jobs.retain(|c| !c.state().is_terminal());
            reaped += before - t.jobs.len();
        }
        self.queued -= reaped;
        reaped
    }

    /// Discard already-terminal entries (cancelled or expired while
    /// waiting), then pop the first admissible job in stride order.
    /// `admissible` sees each candidate head; a `false` verdict leaves
    /// the job queued (FIFO within its tenant is preserved) and moves on
    /// to the next tenant.
    pub(crate) fn pop_next(
        &mut self,
        mut admissible: impl FnMut(&JobCore) -> bool,
    ) -> Option<Arc<JobCore>> {
        self.reap_terminal();
        // Visit non-empty tenants in pass order.
        let mut order: Vec<&String> = self
            .tenants
            .iter()
            .filter(|(_, t)| !t.jobs.is_empty())
            .map(|(name, _)| name)
            .collect();
        order.sort_by_key(|name| self.tenants[*name].pass);
        let chosen = order
            .into_iter()
            .find(|name| {
                self.tenants[*name]
                    .jobs
                    .front()
                    .is_some_and(|c| admissible(c))
            })
            .cloned()?;
        let t = self.tenants.get_mut(&chosen).expect("tenant exists");
        let core = t.jobs.pop_front().expect("non-empty by construction");
        self.queued -= 1;
        t.pass += STRIDE / u64::from(t.weight);
        Some(core)
    }

    /// Remove and return every waiting job (shutdown path).
    pub(crate) fn drain(&mut self) -> Vec<Arc<JobCore>> {
        let mut all = Vec::new();
        for t in self.tenants.values_mut() {
            all.extend(t.jobs.drain(..));
        }
        self.queued = 0;
        all
    }

    /// Iterate the waiting jobs (deadline scanning).
    pub(crate) fn iter(&self) -> impl Iterator<Item = &Arc<JobCore>> {
        self.tenants.values().flat_map(|t| t.jobs.iter())
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use crate::counters::JobCounters;
    use crate::job::{JobId, JobSpec};
    use grain_counters::Registry;

    fn core(id: u64, tenant: &str) -> Arc<JobCore> {
        let reg = Arc::new(Registry::new());
        let group = grain_runtime::TaskGroup::new();
        let counters = JobCounters::register(&reg, &format!("j#{id}"), &group).unwrap();
        // The registry is dropped with the scope at the end of the test;
        // these cores are accounting-only.
        Arc::new(JobCore::new(
            JobId(id),
            JobSpec::new("j", tenant),
            group,
            counters,
            Box::new(|_| {}),
        ))
    }

    #[test]
    fn weight_lookup_defaults_and_clamps() {
        let cfg = AdmissionConfig {
            tenant_weights: vec![("a".into(), 3), ("zero".into(), 0)],
            default_tenant_weight: 2,
            ..AdmissionConfig::default()
        };
        assert_eq!(cfg.weight_of("a"), 3);
        assert_eq!(cfg.weight_of("other"), 2);
        assert_eq!(cfg.weight_of("zero"), 1, "weights clamp to >= 1");
    }

    #[test]
    fn fifo_within_one_tenant() {
        let mut q = FairQueues::new();
        for id in 0..4 {
            q.push(core(id, "a"), 1);
        }
        let ids: Vec<u64> = std::iter::from_fn(|| q.pop_next(|_| true))
            .map(|c| c.id.0)
            .collect();
        assert_eq!(ids, vec![0, 1, 2, 3]);
        assert_eq!(q.len(), 0);
    }

    #[test]
    fn equal_weights_alternate() {
        let mut q = FairQueues::new();
        for id in 0..3 {
            q.push(core(id, "a"), 1);
        }
        for id in 10..13 {
            q.push(core(id, "b"), 1);
        }
        let tenants: Vec<String> = std::iter::from_fn(|| q.pop_next(|_| true))
            .map(|c| c.spec.tenant.clone())
            .collect();
        // Strict alternation after the first pick.
        for pair in tenants.windows(2) {
            assert_ne!(pair[0], pair[1], "order: {tenants:?}");
        }
    }

    #[test]
    fn weights_bias_admission_ratio() {
        let mut q = FairQueues::new();
        for id in 0..30 {
            q.push(core(id, "heavy"), 3);
        }
        for id in 100..130 {
            q.push(core(id, "light"), 1);
        }
        let first12: Vec<String> = (0..12)
            .filter_map(|_| q.pop_next(|_| true))
            .map(|c| c.spec.tenant.clone())
            .collect();
        let heavy = first12.iter().filter(|t| *t == "heavy").count();
        // Weight 3 vs 1 → 3/4 of admissions go to the heavy tenant.
        assert_eq!(heavy, 9, "order: {first12:?}");
    }

    #[test]
    fn inadmissible_heads_do_not_block_other_tenants() {
        let mut q = FairQueues::new();
        q.push(core(0, "a"), 1);
        q.push(core(1, "b"), 1);
        let got = q.pop_next(|c| c.spec.tenant != "a").unwrap();
        assert_eq!(got.spec.tenant, "b");
        // "a" stays queued.
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn terminal_heads_are_reaped() {
        let mut q = FairQueues::new();
        let dead = core(0, "a");
        dead.finish(crate::job::JobState::Cancelled);
        q.push(dead, 1);
        q.push(core(1, "a"), 1);
        let got = q.pop_next(|_| true).unwrap();
        assert_eq!(got.id.0, 1);
        assert_eq!(q.len(), 0, "terminal head was reaped, live one popped");
    }

    #[test]
    fn reap_terminal_removes_mid_queue_entries() {
        let mut q = FairQueues::new();
        q.push(core(0, "a"), 1);
        let dead = core(1, "a");
        q.push(Arc::clone(&dead), 1);
        q.push(core(2, "a"), 1);
        dead.finish(crate::job::JobState::Cancelled);
        assert_eq!(q.len(), 3, "terminal entries linger until reaped");
        assert_eq!(q.reap_terminal(), 1);
        assert_eq!(q.len(), 2, "len no longer counts the terminal entry");
        let ids: Vec<u64> = std::iter::from_fn(|| q.pop_next(|_| true))
            .map(|c| c.id.0)
            .collect();
        assert_eq!(ids, vec![0, 2], "live entries keep FIFO order");
    }

    #[test]
    fn drain_empties_everything() {
        let mut q = FairQueues::new();
        q.push(core(0, "a"), 1);
        q.push(core(1, "b"), 1);
        assert_eq!(q.drain().len(), 2);
        assert_eq!(q.len(), 0);
        assert!(q.pop_next(|_| true).is_none());
    }

    #[test]
    fn returning_tenant_rejoins_at_the_floor() {
        let mut q = FairQueues::new();
        for id in 0..8 {
            q.push(core(id, "busy"), 1);
        }
        // Admit 4 from the busy tenant; its pass is now well ahead.
        for _ in 0..4 {
            q.pop_next(|_| true).unwrap();
        }
        // A fresh tenant arrives: it must not get 4 back-to-back slots
        // of "credit" — it starts at the busy tenant's floor and they
        // alternate.
        q.push(core(100, "fresh"), 1);
        q.push(core(101, "fresh"), 1);
        let next4: Vec<String> = (0..4)
            .filter_map(|_| q.pop_next(|_| true))
            .map(|c| c.spec.tenant.clone())
            .collect();
        let fresh = next4.iter().filter(|t| *t == "fresh").count();
        assert!(fresh <= 2, "fresh tenant cannot monopolize: {next4:?}");
        assert!(fresh >= 1, "fresh tenant gets a fair slot: {next4:?}");
    }
}
