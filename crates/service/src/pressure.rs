//! The overload-pressure control loop.
//!
//! The paper's diagnosis is that a runtime dies at the extremes of task
//! grain: too fine and scheduling overhead dominates (`/threads/idle-rate`
//! climbs, Eq. 1), too coarse and cores starve. PR 0–2 built the
//! *measurement* surface for that regime; this module closes the loop and
//! *acts* on it. Every dispatcher tick the [`PressureController`] samples:
//!
//! * the **windowed overhead fraction** — the delta form of the paper's
//!   idle-rate, `(Δt_func − Δt_exec) / Δt_func` over the last sample
//!   interval, smoothed with an EWMA so one noisy window cannot flap the
//!   controller;
//! * the **queue fill fraction** — jobs waiting vs.
//!   [`crate::AdmissionConfig::max_queued_jobs`] (the service-level
//!   analogue of the pending/staged queue lengths);
//! * the **sojourn of the oldest queued job** — the head of the
//!   admission-latency distribution as it is forming.
//!
//! Those condense into a [`PressureSignal`] with three effects:
//!
//! 1. **Adaptive in-flight budget (AIMD)** — while the smoothed overhead
//!    fraction sits above [`PressureConfig::overhead_high`] with work
//!    queued, the admission budget is cut multiplicatively
//!    ([`PressureConfig::decrease_factor`], at most once per
//!    [`PressureConfig::decrease_every`]); when it falls back below
//!    [`PressureConfig::overhead_low`] the budget regrows additively
//!    ([`PressureConfig::increase_step`]) toward the configured maximum.
//!    Fewer concurrent fine-grain jobs → less scheduling overhead per
//!    unit of useful work — the control knob is exactly the paper's
//!    task-size lever, applied at the job level.
//! 2. **Deadline-slack shedding** — a queued job whose sojourn plus the
//!    EWMA-estimated service time already exceeds its deadline can no
//!    longer finish in time; it is shed *now* (terminal `Rejected`,
//!    reason [`crate::RejectReason::Shed`]) instead of admitted to burn
//!    budget on work nobody will collect.
//! 3. **CoDel-style head drop** — under [`PressureLevel::Critical`], if
//!    the oldest sojourn stays above [`PressureConfig::shed_target`] for
//!    a whole [`PressureConfig::shed_interval`], the oldest queued job is
//!    dropped (one per interval), bounding queue delay for deadline-less
//!    jobs the slack rule cannot reach.
//!
//! With `enabled = false` the service behaves exactly as before this
//! module existed (queued jobs whose deadline expires finish as
//! `TimedOut`, the budget is static).

#![deny(clippy::unwrap_used)]

use crate::job::{JobCore, JobState};
use grain_counters::derived::DerivedCounter;
use grain_counters::sync::Mutex;
use grain_counters::{Registry, RegistryError, Unit};
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Pressure-controller configuration.
#[derive(Debug, Clone)]
pub struct PressureConfig {
    /// Master switch. `false` restores the pre-pressure behavior: static
    /// budget, no shedding, queued deadline expiry → `TimedOut`.
    pub enabled: bool,
    /// Minimum interval between counter samples (the dispatcher ticks
    /// faster; extra ticks are no-ops).
    pub sample_every: Duration,
    /// EWMA smoothing factor for the overhead fraction, in `0.0..=1.0`
    /// (higher = reacts faster, flaps easier).
    pub ewma_alpha: f64,
    /// Smoothed overhead fraction above which the budget shrinks.
    pub overhead_high: f64,
    /// Smoothed overhead fraction below which the budget regrows.
    pub overhead_low: f64,
    /// Queue fill fraction for [`PressureLevel::Elevated`].
    pub queue_elevated: f64,
    /// Queue fill fraction for [`PressureLevel::Critical`].
    pub queue_critical: f64,
    /// Floor for the adaptive budget (clamped to the configured maximum).
    pub min_budget: u64,
    /// Multiplicative budget decrease under sustained high overhead.
    pub decrease_factor: f64,
    /// Rate limit on multiplicative decreases.
    pub decrease_every: Duration,
    /// Additive budget regrowth per sample once overhead is low again.
    pub increase_step: u64,
    /// CoDel target: the oldest queued sojourn the service will tolerate
    /// under critical pressure.
    pub shed_target: Duration,
    /// CoDel interval: how long the oldest sojourn must stay above the
    /// target before one job is dropped (and the period between drops).
    pub shed_interval: Duration,
}

impl Default for PressureConfig {
    fn default() -> Self {
        Self {
            enabled: true,
            sample_every: Duration::from_millis(1),
            ewma_alpha: 0.2,
            overhead_high: 0.6,
            overhead_low: 0.3,
            queue_elevated: 0.5,
            queue_critical: 0.75,
            min_budget: 8,
            decrease_factor: 0.5,
            decrease_every: Duration::from_millis(50),
            increase_step: 64,
            shed_target: Duration::from_millis(25),
            shed_interval: Duration::from_millis(100),
        }
    }
}

/// Coarse overload classification, exported as the
/// `/service/pressure/level` gauge (0/1/2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum PressureLevel {
    /// Healthy: queue shallow, overhead low.
    Nominal,
    /// Building: the queue is filling or overhead is high.
    Elevated,
    /// Overloaded: the queue is near its bound (or deep with high
    /// overhead); CoDel head drop arms.
    Critical,
}

impl fmt::Display for PressureLevel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PressureLevel::Nominal => write!(f, "nominal"),
            PressureLevel::Elevated => write!(f, "elevated"),
            PressureLevel::Critical => write!(f, "critical"),
        }
    }
}

/// One smoothed snapshot of the control inputs and outputs.
#[derive(Debug, Clone, PartialEq)]
pub struct PressureSignal {
    /// EWMA of the windowed overhead fraction (the paper's idle-rate,
    /// Eq. 1, over the last sample windows).
    pub overhead: f64,
    /// Queue fill fraction at the last sample (`0.0..=1.0`).
    pub queue_fill: f64,
    /// Classification derived from the two inputs.
    pub level: PressureLevel,
    /// The adaptive in-flight task budget currently enforced.
    pub budget_limit: u64,
    /// EWMA of observed admitted-to-finished service time, used for
    /// deadline-slack shedding.
    pub est_service: Duration,
}

/// Sampling bookkeeping only the dispatcher touches.
struct SampleBook {
    last_at: Instant,
    last_func_ns: u64,
    last_exec_ns: u64,
    last_decrease: Instant,
    /// Since when the oldest queued sojourn has continuously exceeded
    /// `shed_target` under critical pressure (CoDel state).
    above_since: Option<Instant>,
    primed: bool,
}

/// The controller: shared atomics for the gauge surface, a small mutex
/// for dispatcher-only sampling state. See the [module docs](self).
pub(crate) struct PressureController {
    cfg: PressureConfig,
    /// Configured maximum (the admission config's `max_in_flight_tasks`).
    max_budget: u64,
    /// Effective floor (`min_budget` clamped into `1..=max_budget`).
    min_budget: u64,
    /// Current adaptive budget.
    budget: AtomicU64,
    /// EWMA overhead fraction × 1000.
    overhead_milli: AtomicU64,
    /// Queue fill fraction × 1000 at the last sample.
    fill_milli: AtomicU64,
    /// Current [`PressureLevel`] as 0/1/2.
    level: AtomicU64,
    /// EWMA service time in nanoseconds.
    est_service_ns: AtomicU64,
    book: Mutex<SampleBook>,
}

impl PressureController {
    pub(crate) fn new(cfg: PressureConfig, max_budget: u64) -> Self {
        let max_budget = max_budget.max(1);
        let min_budget = cfg.min_budget.clamp(1, max_budget);
        let now = Instant::now();
        Self {
            cfg,
            max_budget,
            min_budget,
            budget: AtomicU64::new(max_budget),
            overhead_milli: AtomicU64::new(0),
            fill_milli: AtomicU64::new(0),
            level: AtomicU64::new(0),
            est_service_ns: AtomicU64::new(0),
            book: Mutex::new(SampleBook {
                last_at: now,
                last_func_ns: 0,
                last_exec_ns: 0,
                last_decrease: now,
                above_since: None,
                primed: false,
            }),
        }
    }

    pub(crate) fn enabled(&self) -> bool {
        self.cfg.enabled
    }

    /// The in-flight budget admission must respect right now.
    pub(crate) fn budget_limit(&self) -> u64 {
        if self.cfg.enabled {
            self.budget.load(Ordering::SeqCst)
        } else {
            self.max_budget
        }
    }

    pub(crate) fn level(&self) -> PressureLevel {
        match self.level.load(Ordering::SeqCst) {
            0 => PressureLevel::Nominal,
            1 => PressureLevel::Elevated,
            _ => PressureLevel::Critical,
        }
    }

    /// The current smoothed snapshot.
    pub(crate) fn signal(&self) -> PressureSignal {
        PressureSignal {
            overhead: self.overhead_milli.load(Ordering::SeqCst) as f64 / 1000.0,
            queue_fill: self.fill_milli.load(Ordering::SeqCst) as f64 / 1000.0,
            level: self.level(),
            budget_limit: self.budget_limit(),
            est_service: Duration::from_nanos(self.est_service_ns.load(Ordering::SeqCst)),
        }
    }

    /// Feed one admitted-to-finished service time into the slack
    /// estimator (called at settle for admitted jobs).
    pub(crate) fn observe_service_time(&self, d: Duration) {
        if !self.cfg.enabled {
            return;
        }
        let obs = d.as_nanos().min(u128::from(u64::MAX)) as u64;
        let prev = self.est_service_ns.load(Ordering::SeqCst);
        let next = if prev == 0 {
            obs
        } else {
            let a = self.cfg.ewma_alpha.clamp(0.0, 1.0);
            (a * obs as f64 + (1.0 - a) * prev as f64) as u64
        };
        self.est_service_ns.store(next, Ordering::SeqCst);
    }

    pub(crate) fn est_service(&self) -> Duration {
        Duration::from_nanos(self.est_service_ns.load(Ordering::SeqCst))
    }

    /// One control-loop tick: ingest cumulative `Σt_func`/`Σt_exec` (the
    /// runtime's thread counters) and the queue state, update the EWMA,
    /// the level, and the AIMD budget. Rate-limited internally to
    /// [`PressureConfig::sample_every`].
    pub(crate) fn sample(
        &self,
        now: Instant,
        func_ns: u64,
        exec_ns: u64,
        queue_len: usize,
        queue_cap: usize,
    ) {
        if !self.cfg.enabled {
            return;
        }
        let mut book = self.book.lock();
        if book.primed && now.saturating_duration_since(book.last_at) < self.cfg.sample_every {
            return;
        }
        let d_func = func_ns.saturating_sub(book.last_func_ns);
        let d_exec = exec_ns.saturating_sub(book.last_exec_ns);
        let first = !book.primed;
        book.last_func_ns = func_ns;
        book.last_exec_ns = exec_ns;
        book.last_at = now;
        book.primed = true;
        if first {
            // The first window spans service startup; discard it.
            return;
        }

        let inst = if d_func > 0 {
            (d_func.saturating_sub(d_exec)) as f64 / d_func as f64
        } else {
            // No thread activity in the window: the runtime is either
            // idle or fully busy inside long phases; neither is overhead.
            0.0
        };
        let a = self.cfg.ewma_alpha.clamp(0.0, 1.0);
        let prev = self.overhead_milli.load(Ordering::SeqCst) as f64 / 1000.0;
        let overhead = (a * inst + (1.0 - a) * prev).clamp(0.0, 1.0);
        self.overhead_milli
            .store((overhead * 1000.0) as u64, Ordering::SeqCst);

        let fill = (queue_len as f64 / queue_cap.max(1) as f64).clamp(0.0, 1.0);
        self.fill_milli
            .store((fill * 1000.0) as u64, Ordering::SeqCst);

        let level = if fill >= self.cfg.queue_critical
            || (overhead >= self.cfg.overhead_high && fill >= self.cfg.queue_elevated)
        {
            PressureLevel::Critical
        } else if fill >= self.cfg.queue_elevated || overhead >= self.cfg.overhead_high {
            PressureLevel::Elevated
        } else {
            PressureLevel::Nominal
        };
        self.level.store(level as u64, Ordering::SeqCst);
        if level < PressureLevel::Critical {
            book.above_since = None;
        }

        // AIMD budget: multiplicative decrease under sustained overhead
        // with work actually waiting, additive regrowth once calm.
        let budget = self.budget.load(Ordering::SeqCst);
        if overhead >= self.cfg.overhead_high && queue_len > 0 {
            if now.saturating_duration_since(book.last_decrease) >= self.cfg.decrease_every {
                let cut = ((budget as f64) * self.cfg.decrease_factor.clamp(0.0, 1.0)) as u64;
                self.budget.store(
                    cut.clamp(self.min_budget, self.max_budget),
                    Ordering::SeqCst,
                );
                book.last_decrease = now;
            }
        } else if overhead <= self.cfg.overhead_low && budget < self.max_budget {
            self.budget.store(
                budget
                    .saturating_add(self.cfg.increase_step.max(1))
                    .min(self.max_budget),
                Ordering::SeqCst,
            );
        }
    }

    /// Pick the queued jobs to shed this tick. Called by the dispatcher
    /// with the queue lock held — the scan is one pass; actual state
    /// transitions happen outside afterwards. `queued` yields every
    /// waiting job (terminal entries are skipped here).
    pub(crate) fn select_sheds<'a>(
        &self,
        now: Instant,
        queued: impl Iterator<Item = &'a Arc<JobCore>>,
    ) -> Vec<Arc<JobCore>> {
        if !self.cfg.enabled {
            return Vec::new();
        }
        let est = self.est_service();
        let mut sheds = Vec::new();
        let mut oldest: Option<(&'a Arc<JobCore>, Duration)> = None;
        for core in queued {
            if core.state() != JobState::Queued {
                continue;
            }
            let sojourn = now.saturating_duration_since(core.submitted_at);
            if let Some(deadline) = core.spec.deadline {
                // Slack rule: by the time this job could run to
                // completion, its deadline will have passed.
                if sojourn + est >= deadline {
                    sheds.push(Arc::clone(core));
                    continue;
                }
            }
            if oldest.is_none_or(|(_, s)| sojourn > s) {
                oldest = Some((core, sojourn));
            }
        }
        // CoDel head drop: only under critical pressure, only when the
        // oldest sojourn has been above target for a full interval.
        let mut book = self.book.lock();
        match (self.level(), oldest) {
            (PressureLevel::Critical, Some((head, sojourn))) if sojourn > self.cfg.shed_target => {
                match book.above_since {
                    None => book.above_since = Some(now),
                    Some(since)
                        if now.saturating_duration_since(since) >= self.cfg.shed_interval =>
                    {
                        sheds.push(Arc::clone(head));
                        book.above_since = Some(now);
                    }
                    Some(_) => {}
                }
            }
            _ => book.above_since = None,
        }
        sheds
    }

    /// Register the pressure gauge surface on `registry`:
    /// `/service/pressure/{level,overhead,queue-fill}` and
    /// `/service/tasks/budget-limit`.
    pub(crate) fn register_counters(
        self: &Arc<Self>,
        registry: &Registry,
    ) -> Result<(), RegistryError> {
        let c = Arc::clone(self);
        registry.register(
            "/service/pressure/level",
            DerivedCounter::new(Unit::Count, move || c.level.load(Ordering::SeqCst) as f64),
        )?;
        let c = Arc::clone(self);
        registry.register(
            "/service/pressure/overhead",
            DerivedCounter::new(Unit::Ratio, move || {
                c.overhead_milli.load(Ordering::SeqCst) as f64 / 1000.0
            }),
        )?;
        let c = Arc::clone(self);
        registry.register(
            "/service/pressure/queue-fill",
            DerivedCounter::new(Unit::Ratio, move || {
                c.fill_milli.load(Ordering::SeqCst) as f64 / 1000.0
            }),
        )?;
        let c = Arc::clone(self);
        registry.register(
            "/service/tasks/budget-limit",
            DerivedCounter::new(Unit::Count, move || c.budget.load(Ordering::SeqCst) as f64),
        )?;
        Ok(())
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use crate::counters::JobCounters;
    use crate::job::{JobId, JobSpec};
    use grain_runtime::TaskGroup;

    fn controller(cfg: PressureConfig, max: u64) -> PressureController {
        PressureController::new(cfg, max)
    }

    fn fast_cfg() -> PressureConfig {
        PressureConfig {
            sample_every: Duration::ZERO,
            decrease_every: Duration::ZERO,
            ..PressureConfig::default()
        }
    }

    fn queued_core(id: u64, deadline: Option<Duration>) -> Arc<JobCore> {
        let reg = Arc::new(Registry::new());
        let group = TaskGroup::new();
        let counters = JobCounters::register(&reg, &format!("p#{id}"), &group).unwrap();
        let mut spec = JobSpec::new("p", "t");
        spec.deadline = deadline;
        Arc::new(JobCore::new(
            JobId(id),
            spec,
            group,
            counters,
            Box::new(|_| {}),
        ))
    }

    #[test]
    fn overhead_ewma_tracks_deltas_and_level_classifies() {
        let c = controller(fast_cfg(), 100);
        let t0 = Instant::now();
        c.sample(t0, 0, 0, 0, 10); // priming sample
                                   // Pure overhead window: func grew, exec didn't.
        for i in 1..=20u64 {
            c.sample(t0 + Duration::from_millis(i), i * 1_000_000, 0, 8, 10);
        }
        let s = c.signal();
        assert!(s.overhead > 0.8, "overhead EWMA converges up: {s:?}");
        assert_eq!(s.level, PressureLevel::Critical, "fill 0.8 >= 0.75");
        // Useful-work windows with an empty queue bring it back down.
        for i in 21..=80u64 {
            c.sample(
                t0 + Duration::from_millis(i),
                20 * 1_000_000 + (i - 20) * 1_000_000,
                (i - 20) * 1_000_000,
                0,
                10,
            );
        }
        let s = c.signal();
        assert!(s.overhead < 0.2, "overhead EWMA converges down: {s:?}");
        assert_eq!(s.level, PressureLevel::Nominal);
    }

    #[test]
    fn budget_halves_under_overhead_and_regrows_additively() {
        let cfg = PressureConfig {
            increase_step: 10,
            ..fast_cfg()
        };
        let c = controller(cfg, 100);
        let t0 = Instant::now();
        c.sample(t0, 0, 0, 0, 10);
        assert_eq!(c.budget_limit(), 100);
        // High-overhead windows with a queue: multiplicative decrease.
        for i in 1..=30u64 {
            c.sample(t0 + Duration::from_millis(i), i * 1_000_000, 0, 5, 10);
        }
        assert_eq!(c.budget_limit(), 8, "decays to the floor");
        // Calm windows: additive regrowth toward the max.
        for i in 31..=45u64 {
            c.sample(
                t0 + Duration::from_millis(i),
                30 * 1_000_000 + (i - 30) * 1_000_000,
                (i - 30) * 1_000_000,
                0,
                10,
            );
        }
        let b = c.budget_limit();
        assert!(b > 8 && b <= 100, "regrows additively: {b}");
    }

    #[test]
    fn floor_clamps_to_the_configured_max() {
        // max_in_flight 1 (serial admission tests): the floor must not
        // *raise* the budget above the configured maximum.
        let c = controller(fast_cfg(), 1);
        assert_eq!(c.budget_limit(), 1);
        let t0 = Instant::now();
        c.sample(t0, 0, 0, 0, 10);
        for i in 1..=30u64 {
            c.sample(t0 + Duration::from_millis(i), i * 1_000_000, 0, 5, 10);
        }
        assert_eq!(c.budget_limit(), 1);
    }

    #[test]
    fn slack_rule_sheds_doomed_deadline_jobs_only() {
        let c = controller(fast_cfg(), 100);
        let doomed = queued_core(1, Some(Duration::from_millis(10)));
        let fine = queued_core(2, Some(Duration::from_secs(60)));
        let no_deadline = queued_core(3, None);
        let now = Instant::now() + Duration::from_millis(20);
        let sheds = c.select_sheds(now, [&doomed, &fine, &no_deadline].into_iter());
        let ids: Vec<u64> = sheds.iter().map(|c| c.id.0).collect();
        assert_eq!(ids, vec![1], "only the doomed job is shed");
        // With a service-time estimate, the slack rule fires early: a job
        // 20ms into a 60ms deadline cannot finish if service takes 50ms.
        c.est_service_ns.store(
            Duration::from_millis(50).as_nanos() as u64,
            Ordering::SeqCst,
        );
        let soon_doomed = queued_core(4, Some(Duration::from_millis(60)));
        let sheds = c.select_sheds(now, [&soon_doomed].into_iter());
        assert_eq!(sheds.len(), 1, "slack rule anticipates service time");
    }

    #[test]
    fn codel_drops_the_oldest_only_under_sustained_critical() {
        let cfg = PressureConfig {
            shed_target: Duration::from_millis(5),
            shed_interval: Duration::from_millis(10),
            ..fast_cfg()
        };
        let c = controller(cfg, 100);
        let old = queued_core(1, None);
        let t0 = Instant::now();
        // Not critical: nothing happens no matter the sojourn.
        let t = t0 + Duration::from_millis(50);
        assert!(c.select_sheds(t, [&old].into_iter()).is_empty());
        // Force critical (fill 1.0), then: first scan arms, a scan a full
        // interval later drops.
        c.sample(t0, 0, 0, 0, 10);
        c.sample(t0 + Duration::from_millis(1), 1, 0, 10, 10);
        assert_eq!(c.level(), PressureLevel::Critical);
        assert!(c.select_sheds(t, [&old].into_iter()).is_empty(), "arming");
        let dropped = c.select_sheds(t + Duration::from_millis(11), [&old].into_iter());
        assert_eq!(dropped.len(), 1);
    }

    #[test]
    fn disabled_controller_is_inert() {
        let c = controller(
            PressureConfig {
                enabled: false,
                ..fast_cfg()
            },
            100,
        );
        let t0 = Instant::now();
        for i in 0..30u64 {
            c.sample(t0 + Duration::from_millis(i), i * 1_000_000, 0, 10, 10);
        }
        assert_eq!(c.budget_limit(), 100);
        let doomed = queued_core(1, Some(Duration::from_millis(1)));
        let now = Instant::now() + Duration::from_secs(1);
        assert!(c.select_sheds(now, [&doomed].into_iter()).is_empty());
    }
}
