//! Failure-policy behavior of the job service: fail-fast, retry with
//! backoff (until success and until exhaustion), continue-remaining,
//! and fault reporting through `JobOutcome`.

use grain_runtime::TaskError;
use grain_service::{FailurePolicy, JobService, JobSpec, JobState, ServiceConfig};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

fn single_worker_config() -> ServiceConfig {
    ServiceConfig {
        poll_interval: Duration::from_micros(200),
        ..ServiceConfig::with_workers(1)
    }
}

#[test]
fn fail_fast_fails_the_job_and_skips_the_queued_tail() {
    let service = JobService::new(single_worker_config());
    let tail_ran = Arc::new(AtomicU64::new(0));

    let t = Arc::clone(&tail_ran);
    // Default policy is FailFast: the first fault cancels the group.
    let job = service.submit(JobSpec::new("crashy", "tenant-a"), move |ctx| {
        ctx.spawn(|_| panic!("first child down"));
        for _ in 0..50 {
            let t = Arc::clone(&t);
            ctx.spawn(move |_| {
                t.fetch_add(1, Ordering::SeqCst);
            });
        }
    });

    let outcome = job.wait();
    assert_eq!(outcome.state, JobState::Failed);
    assert!(outcome.fault.is_some(), "a Failed job must carry its fault");
    assert!(matches!(
        outcome.fault.as_ref().map(TaskError::root_cause),
        Some(TaskError::Panicked { .. })
    ));
    assert_eq!(outcome.tasks_faulted, 1);
    assert!(
        outcome.tasks_skipped > 0,
        "fail-fast should cancel the queued tail, outcome: {outcome:?}"
    );
    assert!(
        tail_ran.load(Ordering::SeqCst) < 50,
        "every tail task ran despite fail-fast"
    );
    assert_eq!(outcome.retries, 0);
    assert_eq!(
        service
            .registry()
            .query("/service/jobs/failed")
            .expect("service counters registered")
            .value,
        1.0
    );
}

#[test]
fn retry_with_backoff_recovers_a_flaky_job() {
    let service = JobService::new(single_worker_config());
    let attempts = Arc::new(AtomicU64::new(0));

    let a = Arc::clone(&attempts);
    let job = service.submit(
        JobSpec::new("flaky", "tenant-a").retry(5, Duration::from_millis(1)),
        move |ctx| {
            // First two attempts fault; the third runs clean. The body is
            // FnMut exactly so a retry can re-run it.
            let n = a.fetch_add(1, Ordering::SeqCst);
            ctx.spawn(move |_| {
                if n < 2 {
                    panic!("flaky attempt {n}");
                }
            });
        },
    );

    let outcome = job.wait();
    assert_eq!(outcome.state, JobState::Completed, "outcome: {outcome:?}");
    assert_eq!(outcome.retries, 2);
    assert_eq!(attempts.load(Ordering::SeqCst), 3);
    // Fault state is per-attempt: a successful retry reports a clean run.
    assert_eq!(outcome.fault, None);
    assert_eq!(outcome.tasks_faulted, 0);
    assert_eq!(
        service
            .registry()
            .query("/service/jobs/retried")
            .expect("service counters registered")
            .value,
        2.0
    );
    assert_eq!(
        job.query_counter("tasks/retried")
            .expect("job counters registered")
            .value,
        2.0
    );
    assert_eq!(
        service
            .registry()
            .query("/service/jobs/completed")
            .expect("service counters registered")
            .value,
        1.0
    );
}

#[test]
fn retry_exhaustion_fails_the_job_with_its_last_fault() {
    let service = JobService::new(single_worker_config());
    let attempts = Arc::new(AtomicU64::new(0));

    let a = Arc::clone(&attempts);
    let job = service.submit(
        JobSpec::new("doomed", "tenant-a").retry(3, Duration::from_millis(1)),
        move |ctx| {
            a.fetch_add(1, Ordering::SeqCst);
            ctx.spawn(|_| panic!("always down"));
        },
    );

    let outcome = job.wait();
    assert_eq!(outcome.state, JobState::Failed);
    assert_eq!(outcome.retries, 2, "3 attempts = 2 retries");
    assert_eq!(attempts.load(Ordering::SeqCst), 3);
    assert!(matches!(
        outcome.fault.as_ref().map(TaskError::root_cause),
        Some(TaskError::Panicked { message }) if message.contains("always down")
    ));
}

#[test]
fn continue_remaining_lets_siblings_finish_before_failing() {
    let service = JobService::new(single_worker_config());
    let tail_ran = Arc::new(AtomicU64::new(0));

    let t = Arc::clone(&tail_ran);
    let job = service.submit(
        JobSpec::new("stoic", "tenant-a").failure_policy(FailurePolicy::ContinueRemaining),
        move |ctx| {
            ctx.spawn(|_| panic!("one child down"));
            for _ in 0..20 {
                let t = Arc::clone(&t);
                ctx.spawn(move |_| {
                    t.fetch_add(1, Ordering::SeqCst);
                });
            }
        },
    );

    let outcome = job.wait();
    assert_eq!(outcome.state, JobState::Failed);
    assert_eq!(outcome.tasks_faulted, 1);
    assert_eq!(outcome.tasks_skipped, 0, "nothing may be cancelled");
    assert_eq!(tail_ran.load(Ordering::SeqCst), 20);
    // root + 20 siblings completed; the faulted child did not.
    assert_eq!(outcome.tasks_completed, 21);
}

#[test]
fn dependency_faults_inside_a_job_keep_their_cause_chain() {
    let service = JobService::new(single_worker_config());

    let job = service.submit(JobSpec::new("dag", "tenant-a"), move |ctx| {
        let a = ctx.async_call(|_| -> u32 { panic!("root cause here") });
        ctx.dataflow(&[a], |_, v| *v[0] + 1);
    });

    let outcome = job.wait();
    assert_eq!(outcome.state, JobState::Failed);
    let fault = outcome.fault.expect("job faulted");
    assert!(matches!(
        fault.root_cause(),
        TaskError::Panicked { message } if message.contains("root cause here")
    ));
}
