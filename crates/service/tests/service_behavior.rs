//! End-to-end behavior of the job service: cancellation, deadlines,
//! admission backpressure, fair share, and counter isolation.

use grain_counters::sync::Mutex;
use grain_service::{
    AdmissionConfig, AdmissionError, JobService, JobSpec, JobState, RejectReason, ServiceConfig,
};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

fn single_worker_config() -> ServiceConfig {
    ServiceConfig {
        poll_interval: Duration::from_micros(200),
        ..ServiceConfig::with_workers(1)
    }
}

/// Spin until `cond` holds or the timeout trips (returns success).
fn wait_until(timeout: Duration, cond: impl Fn() -> bool) -> bool {
    let deadline = Instant::now() + timeout;
    while Instant::now() < deadline {
        if cond() {
            return true;
        }
        std::thread::sleep(Duration::from_micros(200));
    }
    cond()
}

#[test]
fn cancellation_mid_dag_skips_the_queued_tail() {
    let service = JobService::new(single_worker_config());
    let started = Arc::new(AtomicBool::new(false));
    let tail_ran = Arc::new(AtomicU64::new(0));

    let s = Arc::clone(&started);
    let t = Arc::clone(&tail_ran);
    let job = service.submit(JobSpec::new("dag", "tenant-a"), move |ctx| {
        // First child holds the single worker until cancelled...
        let s = Arc::clone(&s);
        ctx.spawn(move |c| {
            s.store(true, Ordering::SeqCst);
            while !c.is_cancelled() {
                std::thread::sleep(Duration::from_micros(100));
            }
        });
        // ...so this tail sits queued behind it.
        for _ in 0..50 {
            let t = Arc::clone(&t);
            ctx.spawn(move |_| {
                t.fetch_add(1, Ordering::SeqCst);
            });
        }
    });

    assert!(
        wait_until(Duration::from_secs(5), || started.load(Ordering::SeqCst)),
        "blocker never started"
    );
    job.cancel();
    let outcome = job.wait();

    assert_eq!(outcome.state, JobState::Cancelled);
    assert_eq!(outcome.tasks_spawned, 52, "root + blocker + 50 tail tasks");
    assert_eq!(outcome.tasks_skipped, 50, "the queued tail never ran");
    assert_eq!(
        outcome.tasks_completed, 2,
        "root and the cooperative blocker"
    );
    assert_eq!(tail_ran.load(Ordering::SeqCst), 0);
}

#[test]
fn deadline_expiry_times_a_running_job_out() {
    let service = JobService::new(single_worker_config());
    let deadline = Duration::from_millis(30);
    let job = service.submit(JobSpec::new("slow", "tenant-a").deadline(deadline), |ctx| {
        ctx.spawn(|c| {
            // Never finishes on its own; relies on the deadline.
            while !c.is_cancelled() {
                std::thread::sleep(Duration::from_micros(200));
            }
        });
    });
    let outcome = job.wait();
    assert_eq!(outcome.state, JobState::TimedOut);
    assert!(
        outcome.turnaround >= deadline,
        "cannot time out before the deadline: {:?}",
        outcome.turnaround
    );
}

/// Submit a blocker that pins the single-task budget, then a victim
/// with a short deadline that expires while queued. Returns the
/// victim's outcome with the blocker released and completed.
fn queued_deadline_expiry(config: ServiceConfig) -> grain_service::JobOutcome {
    let service = JobService::new(config);
    let release = Arc::new(AtomicBool::new(false));

    let r = Arc::clone(&release);
    let blocker = service.submit(JobSpec::new("blocker", "tenant-a"), move |_| {
        while !r.load(Ordering::SeqCst) {
            std::thread::sleep(Duration::from_micros(200));
        }
    });
    assert!(wait_until(Duration::from_secs(5), || {
        blocker.state() == JobState::Running
    }));

    let victim = service.submit(
        JobSpec::new("victim", "tenant-a").deadline(Duration::from_millis(20)),
        |_| unreachable!("expires while queued; the body must never run"),
    );
    // Release the blocker before asserting anything: a failed assert
    // must not leave it spinning through the service's drop.
    let outcome = victim.wait();
    release.store(true, Ordering::SeqCst);
    assert_eq!(blocker.wait().state, JobState::Completed);
    assert_eq!(outcome.tasks_spawned, 0, "never admitted, never ran");
    outcome
}

/// Budget of 1 task: the blocker occupies it, the victim waits past its
/// deadline. With the pressure loop on (the default), the shedder drops
/// it as `Rejected` with a `Shed` reason — not `TimedOut`.
#[test]
fn deadline_expiry_sheds_a_job_stuck_in_the_queue() {
    let config = ServiceConfig {
        admission: AdmissionConfig {
            max_in_flight_tasks: 1,
            ..AdmissionConfig::default()
        },
        ..single_worker_config()
    };
    let outcome = queued_deadline_expiry(config);
    assert_eq!(outcome.state, JobState::Rejected);
    assert_eq!(outcome.reject_reason, Some(RejectReason::Shed));
}

/// The same expiry with the pressure loop disabled keeps the legacy
/// behavior: the dispatcher's deadline scan ends the job as `TimedOut`.
#[test]
fn deadline_expiry_times_out_a_queued_job_with_shedding_disabled() {
    let mut config = ServiceConfig {
        admission: AdmissionConfig {
            max_in_flight_tasks: 1,
            ..AdmissionConfig::default()
        },
        ..single_worker_config()
    };
    config.pressure.enabled = false;
    let outcome = queued_deadline_expiry(config);
    assert_eq!(outcome.state, JobState::TimedOut);
    assert_eq!(outcome.reject_reason, None);
}

#[test]
fn deadline_on_a_dormant_dataflow_reservation_settles_from_the_dispatcher() {
    // At expiry the job's only in-flight member is a dormant dataflow
    // reservation, so the dispatcher's cancel retires the group's last
    // member and runs settle() inline on the dispatcher thread.
    // Regression: the deadline scan used to hold the running lock across
    // cancel(), self-deadlocking on settle()'s running.lock().
    let service = JobService::new(single_worker_config());
    let (_promise, never) = grain_runtime::channel::<u32>();
    let job = service.submit(
        JobSpec::new("dormant", "tenant-a").deadline(Duration::from_millis(30)),
        move |ctx| {
            let _ = ctx.dataflow(std::slice::from_ref(&never), |_, _| {
                unreachable!("input never arrives")
            });
        },
    );
    let outcome = job
        .wait_timeout(Duration::from_secs(5))
        .expect("dispatcher deadlocked settling an expired dormant job");
    assert_eq!(outcome.state, JobState::TimedOut);
    assert_eq!(outcome.tasks_skipped, 1, "the reservation was released");
}

#[test]
fn racing_cancel_with_admission_never_leaks_budget_or_running_entries() {
    // Hammer the Queued→Cancelled vs Queued→Admitted race: each job is
    // cancelled right after submission, while the dispatcher may be
    // admitting it. Regression: a cancel landing between admission's
    // state transitions could either leak the budget reservation (the
    // job stayed in the running list forever) or be overwritten back to
    // a non-terminal state.
    let service = JobService::new(single_worker_config());
    let jobs: Vec<_> = (0..200)
        .map(|i| {
            let job = service.submit(JobSpec::new(format!("racy-{i}"), "tenant-a"), |_| {});
            job.cancel();
            job
        })
        .collect();
    for job in &jobs {
        let outcome = job
            .wait_timeout(Duration::from_secs(5))
            .expect("cancel/admit race lost the terminal transition");
        assert!(
            matches!(outcome.state, JobState::Cancelled | JobState::Completed),
            "unexpected terminal state {}",
            outcome.state
        );
        assert!(job.state().is_terminal(), "terminal state was overwritten");
    }
    assert!(
        wait_until(Duration::from_secs(5), || service.running_len() == 0
            && service.queue_len() == 0),
        "a settled job leaked budget or a running-list entry"
    );
}

#[test]
fn wait_all_covers_jobs_in_the_admission_window() {
    // Regression: between the dispatcher popping a job off the queues
    // and pushing it into the running list, wait_all used to see it in
    // neither structure and return while work was about to start.
    let service = JobService::new(single_worker_config());
    for round in 0..50 {
        let jobs: Vec<_> = (0..4)
            .map(|i| service.submit(JobSpec::new(format!("w{round}-{i}"), "tenant-a"), |_| {}))
            .collect();
        service.wait_all();
        for job in &jobs {
            assert!(
                job.state().is_terminal(),
                "wait_all returned while a job was still {}",
                job.state()
            );
        }
    }
}

#[test]
fn terminal_queue_entries_do_not_count_against_the_queue_bound() {
    // A job cancelled while queued leaves a terminal entry behind until
    // the dispatcher reaps it; submit() must not let it cause a spurious
    // QueueFull rejection.
    let config = ServiceConfig {
        admission: AdmissionConfig {
            max_in_flight_tasks: 1,
            max_queued_jobs: 2,
            ..AdmissionConfig::default()
        },
        ..single_worker_config()
    };
    let service = JobService::new(config);
    let release = Arc::new(AtomicBool::new(false));
    let r = Arc::clone(&release);
    let blocker = service.submit(JobSpec::new("blocker", "tenant-a"), move |_| {
        while !r.load(Ordering::SeqCst) {
            std::thread::sleep(Duration::from_micros(200));
        }
    });
    assert!(wait_until(Duration::from_secs(5), || {
        blocker.state() == JobState::Running
    }));
    let q1 = service.submit(JobSpec::new("q1", "tenant-a"), |_| {});
    let q2 = service.submit(JobSpec::new("q2", "tenant-a"), |_| {});
    assert!(q1.rejection().is_none() && q2.rejection().is_none());
    // The queue sits at its bound of 2; cancelling q1 leaves a terminal
    // entry that must no longer count toward it.
    q1.cancel();
    assert_eq!(q1.wait().state, JobState::Cancelled);
    let q3 = service.submit(JobSpec::new("q3", "tenant-a"), |_| {});
    assert!(
        q3.rejection().is_none(),
        "terminal queue entry caused a spurious rejection: {:?}",
        q3.rejection()
    );
    release.store(true, Ordering::SeqCst);
    assert_eq!(blocker.wait().state, JobState::Completed);
    assert_eq!(q2.wait().state, JobState::Completed);
    assert_eq!(q3.wait().state, JobState::Completed);
}

#[test]
fn backpressure_rejects_when_the_queue_is_full() {
    let config = ServiceConfig {
        admission: AdmissionConfig {
            max_in_flight_tasks: 1,
            max_queued_jobs: 2,
            ..AdmissionConfig::default()
        },
        ..single_worker_config()
    };
    let service = JobService::new(config);
    let release = Arc::new(AtomicBool::new(false));

    let r = Arc::clone(&release);
    let blocker = service.submit(JobSpec::new("blocker", "tenant-a"), move |_| {
        while !r.load(Ordering::SeqCst) {
            std::thread::sleep(Duration::from_micros(200));
        }
    });
    assert!(wait_until(Duration::from_secs(5), || {
        blocker.state() == JobState::Running
    }));

    // The budget is full, so these two sit in the queue...
    let q1 = service.submit(JobSpec::new("waiter", "tenant-a"), |_| {});
    let q2 = service.submit(JobSpec::new("waiter", "tenant-a"), |_| {});
    // ...and the third submission bounces.
    let rejected = service.submit(JobSpec::new("overflow", "tenant-a"), |_| {});

    assert_eq!(rejected.state(), JobState::Rejected);
    match rejected.rejection() {
        Some(AdmissionError::QueueFull { queued, limit }) => {
            assert_eq!(queued, 2);
            assert_eq!(limit, 2);
        }
        other => panic!("expected QueueFull, got {other:?}"),
    }
    assert_eq!(
        service
            .registry()
            .query("/service/jobs/rejected")
            .unwrap()
            .as_count(),
        1
    );

    release.store(true, Ordering::SeqCst);
    assert_eq!(blocker.wait().state, JobState::Completed);
    assert_eq!(q1.wait().state, JobState::Completed);
    assert_eq!(q2.wait().state, JobState::Completed);
}

#[test]
fn fair_share_biases_admission_toward_the_heavier_tenant() {
    let config = ServiceConfig {
        admission: AdmissionConfig {
            // One job's budget at a time: admission order == run order.
            max_in_flight_tasks: 1,
            tenant_weights: vec![("heavy".into(), 3), ("light".into(), 1)],
            ..AdmissionConfig::default()
        },
        ..ServiceConfig::with_workers(2)
    };
    let service = JobService::new(config);
    let release = Arc::new(AtomicBool::new(false));
    let order: Arc<Mutex<Vec<String>>> = Arc::new(Mutex::new(Vec::new()));

    // Hold the budget while both tenants pile up their backlogs.
    let r = Arc::clone(&release);
    let blocker = service.submit(JobSpec::new("blocker", "warmup"), move |_| {
        while !r.load(Ordering::SeqCst) {
            std::thread::sleep(Duration::from_micros(200));
        }
    });
    assert!(wait_until(Duration::from_secs(5), || {
        blocker.state() == JobState::Running
    }));

    let mut handles = Vec::new();
    for tenant in ["heavy", "light"] {
        for _ in 0..8 {
            let o = Arc::clone(&order);
            let t = tenant.to_string();
            handles.push(service.submit(JobSpec::new("work", tenant), move |_| {
                o.lock().push(t.clone());
            }));
        }
    }
    release.store(true, Ordering::SeqCst);
    for h in handles {
        assert_eq!(h.wait().state, JobState::Completed);
    }

    let order = order.lock();
    let heavy_in_first_8 = order[..8].iter().filter(|t| *t == "heavy").count();
    // Weight 3 vs 1: the heavy tenant owns ~3/4 of early admissions
    // (exactly 6 of 8 under strict stride; allow scheduling slack).
    assert!(
        heavy_in_first_8 >= 5,
        "heavy tenant under-served: {:?}",
        &order[..]
    );
    assert!(
        order[..8].iter().any(|t| t == "light"),
        "light tenant fully starved: {:?}",
        &order[..]
    );
}

#[test]
fn per_job_counters_are_isolated_and_retired() {
    let service = JobService::with_workers(2);

    let job_a = service.submit(
        JobSpec::new("alpha", "tenant-a").estimated_tasks(11),
        |ctx| {
            for _ in 0..10 {
                ctx.spawn(|_| {
                    std::hint::black_box(0u64);
                });
            }
        },
    );
    assert_eq!(job_a.wait().state, JobState::Completed);
    let path_a = format!("/jobs{{{}}}/threads/count/cumulative", job_a.instance());
    assert_eq!(service.registry().query(&path_a).unwrap().as_count(), 11);

    let job_b = service.submit(JobSpec::new("beta", "tenant-b").estimated_tasks(6), |ctx| {
        for _ in 0..5 {
            ctx.spawn(|_| {
                std::hint::black_box(0u64);
            });
        }
    });
    assert_eq!(job_b.wait().state, JobState::Completed);

    // Job B's work moved B's counters, not A's.
    assert_eq!(
        job_b
            .query_counter("threads/count/cumulative")
            .unwrap()
            .as_count(),
        6
    );
    assert_eq!(
        service.registry().query(&path_a).unwrap().as_count(),
        11,
        "job A's cumulative count must not see job B's tasks"
    );
    assert_ne!(job_a.instance(), job_b.instance());

    // Dropping the last handle retires the job's counter namespace.
    drop(job_a);
    assert!(
        wait_until(Duration::from_secs(5), || {
            service.registry().query(&path_a).is_err()
        }),
        "job A's namespace should unregister once its last handle drops"
    );

    // Service-wide lifecycle counters saw both jobs.
    assert_eq!(
        service
            .registry()
            .query("/service/jobs/completed")
            .unwrap()
            .as_count(),
        2
    );
}

#[test]
fn concurrent_jobs_share_the_runtime_without_interference() {
    let service = JobService::with_workers(4);
    let mut handles = Vec::new();
    for round in 0..3 {
        for tenant in ["a", "b", "c"] {
            let spec = JobSpec::new(format!("mix-{round}"), tenant).estimated_tasks(17);
            handles.push(service.submit(spec, move |ctx| {
                let total = Arc::new(AtomicU64::new(0));
                for i in 0..16u64 {
                    let total = Arc::clone(&total);
                    ctx.spawn(move |_| {
                        total.fetch_add(std::hint::black_box(i), Ordering::Relaxed);
                    });
                }
            }));
        }
    }
    for h in handles {
        let outcome = h.wait();
        assert_eq!(outcome.state, JobState::Completed);
        assert_eq!(outcome.tasks_completed, 17, "root + 16 children each");
        assert_eq!(outcome.tasks_skipped, 0);
    }
    assert_eq!(
        service
            .registry()
            .query("/service/jobs/completed")
            .unwrap()
            .as_count(),
        9
    );
}

#[test]
fn dropping_the_service_mid_flight_tears_down_on_the_dropping_thread() {
    // Settlement hooks on worker threads hold transient Arc clones of
    // the service internals. Dropping the service while jobs are still
    // settling used to race: a worker could end up owning the last
    // reference, drop the runtime from inside itself, and self-join
    // (EDEADLK). Drop now waits the transients out; a batch of quick
    // jobs dropped mid-flight must tear down cleanly every time.
    for round in 0..8 {
        let service = JobService::new(ServiceConfig {
            poll_interval: Duration::from_micros(200),
            ..ServiceConfig::with_workers(2)
        });
        let handles: Vec<_> = (0..16)
            .map(|i| {
                service.submit(
                    JobSpec::new(format!("flash-{round}-{i}"), "tenant-a"),
                    |ctx| {
                        for _ in 0..4 {
                            ctx.spawn(|_| std::hint::black_box(()));
                        }
                    },
                )
            })
            .collect();
        // Drop with jobs in every stage: queued, running, settling.
        drop(service);
        drop(handles);
    }
}
