//! Overload-resilience behavior: load shedding, per-tenant circuit
//! breakers, and deadline-budget propagation through the service.

use grain_service::{
    AdmissionConfig, BreakerState, JobService, JobSpec, JobState, PressureLevel, RejectReason,
    ServiceConfig,
};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

fn base_config() -> ServiceConfig {
    ServiceConfig {
        poll_interval: Duration::from_micros(200),
        ..ServiceConfig::with_workers(1)
    }
}

/// Spin until `cond` holds or the timeout trips (returns success).
fn wait_until(timeout: Duration, cond: impl Fn() -> bool) -> bool {
    let deadline = Instant::now() + timeout;
    while Instant::now() < deadline {
        if cond() {
            return true;
        }
        std::thread::sleep(Duration::from_micros(200));
    }
    cond()
}

#[test]
fn shed_jobs_report_shed_and_meter_the_shed_counter() {
    // One blocker pins the single-task budget; five victims with short
    // deadlines pile up behind it and must all be shed — metered on the
    // `shed` counter, not `rejected`.
    let config = ServiceConfig {
        admission: AdmissionConfig {
            max_in_flight_tasks: 1,
            ..AdmissionConfig::default()
        },
        ..base_config()
    };
    let service = JobService::new(config);
    let release = Arc::new(AtomicBool::new(false));
    let r = Arc::clone(&release);
    let blocker = service.submit(JobSpec::new("blocker", "tenant-a"), move |_| {
        while !r.load(Ordering::SeqCst) {
            std::thread::sleep(Duration::from_micros(200));
        }
    });
    assert!(wait_until(Duration::from_secs(5), || {
        blocker.state() == JobState::Running
    }));

    let victims: Vec<_> = (0..5)
        .map(|i| {
            service.submit(
                JobSpec::new(format!("victim-{i}"), "tenant-a").deadline(Duration::from_millis(15)),
                |_| unreachable!("must be shed while queued"),
            )
        })
        .collect();
    let outcomes: Vec<_> = victims.iter().map(|v| v.wait()).collect();
    release.store(true, Ordering::SeqCst);
    assert_eq!(blocker.wait().state, JobState::Completed);

    for o in &outcomes {
        assert_eq!(o.state, JobState::Rejected);
        assert_eq!(o.reject_reason, Some(RejectReason::Shed));
        assert_eq!(o.tasks_spawned, 0, "shed before admission, never ran");
    }
    let counters = service.counters();
    assert_eq!(counters.shed.get(), 5, "one shed increment per victim");
    assert_eq!(counters.rejected.get(), 0, "shed is not rejected");
    assert_eq!(counters.timed_out.get(), 0, "shed is not timed out");
    assert_eq!(
        service
            .registry()
            .query("/service/jobs/shed")
            .expect("registered")
            .value,
        5.0
    );
}

#[test]
fn breaker_trips_on_a_faulting_tenant_and_recloses_after_a_good_probe() {
    let mut config = base_config();
    config.breaker.min_samples = 4;
    config.breaker.window = 8;
    // Wide margins: the open window must comfortably outlast the
    // bounced-submission and other-tenant checks below even on a slow,
    // loaded machine.
    config.breaker.open_for = Duration::from_millis(300);
    config.breaker.probe_every = Duration::from_millis(5);
    let service = JobService::new(config);

    // Four straight faults cross the 50 % threshold at min_samples.
    for i in 0..4 {
        let job = service.submit(JobSpec::new(format!("bad-{i}"), "chaos"), |_| {
            panic!("chaos job faults")
        });
        assert_eq!(job.wait().state, JobState::Failed);
    }
    assert_eq!(service.breaker_state("chaos"), Some(BreakerState::Open));
    assert_eq!(service.breaker_opens("chaos"), 1);

    // While open, submissions bounce with a BreakerOpen reason...
    let bounced = service.submit(JobSpec::new("bounced", "chaos"), |_| {
        unreachable!("breaker is open")
    });
    let o = bounced.wait();
    assert_eq!(o.state, JobState::Rejected);
    assert_eq!(o.reject_reason, Some(RejectReason::BreakerOpen));
    assert!(service.breaker_rejections() >= 1);

    // ...but other tenants sail through untouched.
    let fine = service.submit(JobSpec::new("fine", "steady"), |ctx| {
        ctx.spawn(|_| std::hint::black_box(()));
    });
    assert_eq!(fine.wait().state, JobState::Completed);
    assert_eq!(service.breaker_state("steady"), Some(BreakerState::Closed));

    // After the cooldown a healthy job is admitted as the half-open
    // probe; its success re-closes the breaker.
    std::thread::sleep(Duration::from_millis(350));
    let probe = service.submit(JobSpec::new("probe", "chaos"), |ctx| {
        ctx.spawn(|_| std::hint::black_box(()));
    });
    assert_eq!(probe.wait().state, JobState::Completed);
    assert!(wait_until(Duration::from_secs(5), || {
        service.breaker_state("chaos") == Some(BreakerState::Closed)
    }));

    // And the tenant serves normally again.
    let after = service.submit(JobSpec::new("after", "chaos"), |ctx| {
        ctx.spawn(|_| std::hint::black_box(()));
    });
    assert_eq!(after.wait().state, JobState::Completed);
}

#[test]
fn open_breaker_denies_the_retry_budget() {
    // A retrying tenant faults enough to trip its breaker; the faulted
    // job then fails outright instead of spending more attempts.
    let mut config = base_config();
    config.breaker.min_samples = 2;
    config.breaker.window = 4;
    config.breaker.open_for = Duration::from_secs(30); // never cools in-test
    let service = JobService::new(config);

    let jobs: Vec<_> = (0..3)
        .map(|i| {
            service.submit(
                JobSpec::new(format!("flappy-{i}"), "chaos").failure_policy(
                    grain_service::FailurePolicy::RetryWithBackoff {
                        max_attempts: 50,
                        base: Duration::from_millis(1),
                        cap: Duration::from_millis(2),
                    },
                ),
                |_| panic!("always faults"),
            )
        })
        .collect();
    for j in &jobs {
        assert_eq!(j.wait().state, JobState::Failed);
    }
    assert_eq!(service.breaker_state("chaos"), Some(BreakerState::Open));
    let total_retries: u64 = jobs.iter().map(|j| j.wait().retries).sum();
    // 3 jobs × 50 attempts would be 147 retries; the breaker cuts the
    // spree short as soon as it trips.
    assert!(
        total_retries < 10,
        "open breaker must stop the retry spree (saw {total_retries})"
    );
}

#[test]
fn deadline_budget_propagates_to_dispatch() {
    // A huge poll interval keeps the dispatcher's deadline scan out of
    // the picture: the only thing that can stop the queued tail is the
    // group's deadline budget, checked by workers at dispatch.
    let config = ServiceConfig {
        poll_interval: Duration::from_secs(3600),
        ..ServiceConfig::with_workers(1)
    };
    let service = JobService::new(config);
    let release = Arc::new(AtomicBool::new(false));
    let r = Arc::clone(&release);
    let deadline = Duration::from_millis(20);
    let submitted = Instant::now();
    let job = service.submit(
        JobSpec::new("budgeted", "tenant-a").deadline(deadline),
        move |ctx| {
            let r = Arc::clone(&r);
            ctx.spawn(move |_| {
                // Holds the worker until the deadline has passed.
                while !r.load(Ordering::SeqCst) {
                    std::thread::sleep(Duration::from_micros(200));
                }
            });
            for _ in 0..20 {
                ctx.spawn(|_| unreachable!("over budget at dispatch; must never run"));
            }
        },
    );
    // Let the deadline lapse, then free the worker: the tail is dropped
    // at dispatch because the budget is exhausted, not by any cancel.
    while submitted.elapsed() < deadline + Duration::from_millis(5) {
        std::thread::sleep(Duration::from_millis(1));
    }
    release.store(true, Ordering::SeqCst);
    let outcome = job
        .wait_timeout(Duration::from_secs(10))
        .expect("job must settle from quiescence without the dispatcher");
    assert_eq!(outcome.tasks_budget_skipped, 20, "whole tail over budget");
    assert_eq!(outcome.tasks_skipped, 20);
    assert_eq!(outcome.tasks_completed, 2, "root + gate ran");
}

#[test]
fn pressure_signal_reports_queue_fill_and_shrinks_nothing_when_calm() {
    let service = JobService::new(base_config());
    let sig = service.pressure_signal();
    assert_eq!(sig.level, PressureLevel::Nominal);
    // The budget limit starts at the full configured budget.
    assert_eq!(
        sig.budget_limit,
        AdmissionConfig::default().max_in_flight_tasks
    );
    // A healthy run leaves the level nominal.
    let job = service.submit(JobSpec::new("calm", "tenant-a"), |ctx| {
        for _ in 0..8 {
            ctx.spawn(|_| std::hint::black_box(()));
        }
    });
    assert_eq!(job.wait().state, JobState::Completed);
    assert_eq!(service.pressure_signal().level, PressureLevel::Nominal);
}
