//! A second application on the runtime: blocked longest-common-subsequence
//! (LCS) dynamic programming — a *wavefront* dependency pattern, where
//! tile (i, j) needs the bottom row of the tile above, the right column
//! of the tile to the left, and the corner of the diagonal tile.
//!
//! Unlike the stencil's constant-width steps, wavefront parallelism grows
//! and shrinks along the anti-diagonals, so the tile (grain) size trades
//! off differently: tiny tiles expose parallelism earlier but multiply
//! task-management overhead — the same study, different topology.
//!
//! ```sh
//! cargo run --release --example wavefront_lcs
//! ```

use grain::runtime::{Runtime, SharedFuture};
use std::sync::Arc;

/// Boundary data a tile passes to its successors.
#[derive(Debug, Clone)]
struct TileEdge {
    /// dp values of the tile's bottom row.
    bottom: Vec<u32>,
    /// dp values of the tile's right column.
    right: Vec<u32>,
    /// dp value of the tile's bottom-right corner's diagonal predecessor
    /// (i.e. dp at (r0-1, c0-1) for the *next* diagonal tile).
    corner: u32,
}

/// Sequential reference LCS-length DP.
fn lcs_sequential(a: &[u8], b: &[u8]) -> u32 {
    let mut prev = vec![0u32; b.len() + 1];
    let mut cur = vec![0u32; b.len() + 1];
    for i in 1..=a.len() {
        for j in 1..=b.len() {
            cur[j] = if a[i - 1] == b[j - 1] {
                prev[j - 1] + 1
            } else {
                prev[j].max(cur[j - 1])
            };
        }
        std::mem::swap(&mut prev, &mut cur);
    }
    prev[b.len()]
}

/// Compute one tile given its boundary inputs. `top` has `cols` entries,
/// `left` has `rows` entries, `corner` is dp of the cell diagonal to the
/// tile's top-left.
fn compute_tile(a: &[u8], b: &[u8], top: &[u32], left: &[u32], corner: u32) -> TileEdge {
    let rows = a.len();
    let cols = b.len();
    // dp with a halo row/col assembled from the inputs.
    let mut prev: Vec<u32> = std::iter::once(corner).chain(top.iter().copied()).collect();
    let mut cur = vec![0u32; cols + 1];
    let mut right = Vec::with_capacity(rows);
    for i in 1..=rows {
        cur[0] = left[i - 1];
        for j in 1..=cols {
            cur[j] = if a[i - 1] == b[j - 1] {
                prev[j - 1] + 1
            } else {
                prev[j].max(cur[j - 1])
            };
        }
        right.push(cur[cols]);
        std::mem::swap(&mut prev, &mut cur);
    }
    TileEdge {
        bottom: prev[1..].to_vec(),
        // corner for the tile diagonally down-right: dp of this tile's
        // bottom-right cell… which its right/bottom already carry; the
        // *next* diagonal needs dp at this tile's bottom-right, i.e.:
        corner: *right.last().unwrap_or(&corner),
        right,
    }
}

/// Blocked LCS on the task runtime: one dataflow task per tile.
fn lcs_blocked(rt: &Runtime, a: Arc<Vec<u8>>, b: Arc<Vec<u8>>, tile: usize) -> u32 {
    let rows = a.len().div_ceil(tile);
    let cols = b.len().div_ceil(tile);
    let mut tiles: Vec<SharedFuture<TileEdge>> = Vec::with_capacity(rows * cols);

    for i in 0..rows {
        for j in 0..cols {
            let r0 = i * tile;
            let c0 = j * tile;
            let r1 = ((i + 1) * tile).min(a.len());
            let c1 = ((j + 1) * tile).min(b.len());
            let (a, b) = (Arc::clone(&a), Arc::clone(&b));

            // Dependencies: up, left, diagonal (when they exist).
            let up = if i > 0 {
                Some(tiles[(i - 1) * cols + j].clone())
            } else {
                None
            };
            let lf = if j > 0 {
                Some(tiles[i * cols + j - 1].clone())
            } else {
                None
            };
            let dg = if i > 0 && j > 0 {
                Some(tiles[(i - 1) * cols + j - 1].clone())
            } else {
                None
            };
            let deps: Vec<SharedFuture<TileEdge>> = [up.clone(), lf.clone(), dg.clone()]
                .into_iter()
                .flatten()
                .collect();

            let fut = rt.dataflow(&deps, move |_, _vals| {
                let top: Vec<u32> = match &up {
                    Some(f) => f.try_get().expect("dep ready").expect("dep ok").bottom[..].to_vec(),
                    None => vec![0; c1 - c0],
                };
                let left: Vec<u32> = match &lf {
                    Some(f) => f.try_get().expect("dep ready").expect("dep ok").right[..].to_vec(),
                    None => vec![0; r1 - r0],
                };
                // dp[r0][c0]: the diagonal tile's bottom-right value; on
                // the top row or left column it is the DP's zero halo.
                let corner = match &dg {
                    Some(f) => f.try_get().expect("dep ready").expect("dep ok").corner,
                    None => 0,
                };
                compute_tile(&a[r0..r1], &b[c0..c1], &top, &left, corner)
            });
            tiles.push(fut);
        }
    }
    let last = tiles.last().unwrap().get();
    rt.wait_idle();
    *last.bottom.last().unwrap()
}

fn synthetic_sequence(len: usize, seed: u64) -> Vec<u8> {
    let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
    (0..len)
        .map(|_| {
            state ^= state >> 12;
            state ^= state << 25;
            state ^= state >> 27;
            (b"ACGT")[(state.wrapping_mul(0x2545_F491_4F6C_DD1D) >> 62) as usize]
        })
        .collect()
}

fn main() {
    let rt = Runtime::with_workers(grain::topology::host::available_cores().max(2));
    let a = Arc::new(synthetic_sequence(2_048, 1));
    let b = Arc::new(synthetic_sequence(2_048, 2));
    let expect = lcs_sequential(&a, &b);
    println!("LCS length (sequential reference): {expect}\n");

    println!(
        "{:>6} {:>8} {:>10} {:>12} {:>10}",
        "tile", "tasks", "wall(s)", "t_o/task", "idle-rate"
    );
    for tile in [32usize, 128, 512, 2_048] {
        rt.reset_counters();
        let t0 = std::time::Instant::now();
        let got = lcs_blocked(&rt, Arc::clone(&a), Arc::clone(&b), tile);
        let wall = t0.elapsed().as_secs_f64();
        assert_eq!(got, expect, "blocked result must match the DP oracle");
        let c = rt.counters();
        println!(
            "{:>6} {:>8} {:>10.4} {:>10.1}ns {:>9.1}%",
            tile,
            c.tasks.sum(),
            wall,
            c.task_overhead_ns(),
            c.idle_rate() * 100.0
        );
    }
    println!(
        "\nSame U-curve, wavefront topology: tiny tiles drown in task management,\n\
         huge tiles serialize the anti-diagonal. Correctness checked against the\n\
         sequential DP at every tile size."
    );
}
