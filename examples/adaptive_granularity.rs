//! Dynamic grain-size adaptation — the capability the paper's
//! characterization was built to enable (§VI) — running on the *native*
//! runtime: start with pathologically fine tasks, monitor the windowed
//! idle-rate, and let the tuner re-partition between epochs.
//!
//! ```sh
//! cargo run --release --example adaptive_granularity
//! ```

use grain::adaptive::{adapt, ThresholdTuner, Tuner, TunerConfig};
use grain::metrics::sweep::NativeEngine;

fn main() {
    let engine = NativeEngine::scaled(1_000_000, 8);
    let workers = grain::topology::host::available_cores().max(2);

    let mut tuner = ThresholdTuner::new(TunerConfig {
        initial_nx: 200, // deliberately far too fine
        target_idle_rate: 0.40,
        ..TunerConfig::default()
    });
    println!(
        "adapting the stencil's partition size on {} host workers (start nx={}):\n",
        workers,
        tuner.current_nx()
    );

    let trace = adapt(&engine, workers, &mut tuner, 12);
    for (i, e) in trace.epochs.iter().enumerate() {
        println!(
            "epoch {i:>2}: nx={:<9} exec={:.3}s idle-rate={:>5.1}% throughput={:.1} Mpt/s",
            e.nx,
            e.wall_s,
            e.idle_rate * 100.0,
            e.points_per_s / 1e6
        );
    }
    println!(
        "\nconverged: {} | final nx = {} | throughput gain {:.2}x",
        trace.converged,
        trace.final_nx,
        trace.speedup()
    );
    assert!(
        trace.final_nx > 200,
        "the tuner should have escaped the fine-grained regime"
    );
}
