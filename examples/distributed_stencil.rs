//! Distributed 1-D heat diffusion — the `1d_stencil_8` analog — across
//! an in-process world of loopback localities, validated bit-for-bit
//! against the single-runtime futurized run, with the `/parcels/*`
//! counter family read back per locality.
//!
//! ```sh
//! cargo run --release --example distributed_stencil
//! ```

use grain::net::bootstrap::Fabric;
use grain::runtime::{Runtime, RuntimeConfig};
use grain::stencil::distributed::DistStencil;
use grain::stencil::{run_futurized, StencilParams};

fn main() {
    let world = 3;
    let params = StencilParams::new(256, 12, 40);
    println!(
        "distributed stencil: {} localities, np={} partitions of nx={} points, nt={} steps",
        world, params.np, params.nx, params.nt
    );

    // A hermetic world: every locality is a full runtime in this
    // process, wired full-mesh with loopback parcelports.
    let fabric = Fabric::loopback(world, |_| RuntimeConfig::with_workers(1));
    let instances: Vec<DistStencil> = (0..world)
        .map(|k| DistStencil::install(fabric.locality(k), params))
        .collect();
    let t0 = std::time::Instant::now();
    for inst in &instances {
        inst.start();
    }
    let grid = instances[0].gather().expect("distributed run settled");
    println!("gathered {} points in {:.3?}", grid.len(), t0.elapsed());

    // Same physics, same bits: compare against the single-runtime run.
    let rt = Runtime::with_workers(2);
    let oracle = run_futurized(&rt, &params);
    assert_eq!(grid, oracle, "distributed result must be bit-identical");
    println!("bit-identical to the single-locality futurized run ✓");

    // Read the parcel books per locality through each registry.
    println!();
    for (k, inst) in instances.iter().enumerate() {
        let (ofs, cnt) = inst.block();
        let reg = fabric.locality(k).runtime().registry();
        let t = format!("locality#{k}/total");
        let sent = reg
            .query(&format!("/parcels{{{t}}}/count/sent"))
            .expect("counter");
        let recv = reg
            .query(&format!("/parcels{{{t}}}/count/received"))
            .expect("counter");
        let ser = reg
            .query(&format!("/parcels{{{t}}}/time/average-serialization"))
            .expect("counter");
        println!(
            "locality#{k}: partitions [{}, {}) | parcels sent {:>4} received {:>4} | avg serialization {:>6.0} ns",
            ofs,
            ofs + cnt,
            sent.value,
            recv.value,
            ser.value
        );
    }
    fabric.shutdown();
}
