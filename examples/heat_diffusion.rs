//! The HPX-Stencil benchmark end to end: futurized 1-D heat diffusion,
//! validated against the sequential oracle, at two task granularities —
//! showing how partition size moves every counter the paper studies.
//!
//! ```sh
//! cargo run --release --example heat_diffusion
//! ```

use grain::runtime::Runtime;
use grain::stencil::{run_futurized, run_sequential, total_heat, StencilParams};

fn run_and_report(rt: &Runtime, params: &StencilParams) {
    rt.reset_counters();
    let t0 = std::time::Instant::now();
    let grid = run_futurized(rt, params);
    let wall = t0.elapsed().as_secs_f64();

    let c = rt.counters();
    println!(
        "nx={:<8} np={:<6} tasks={:<8} exec={:.3}s t_d={:>10.1}ns t_o={:>10.1}ns idle-rate={:.1}% pending-acc={}",
        params.nx,
        params.np,
        c.tasks.sum(),
        wall,
        c.task_duration_ns(),
        c.task_overhead_ns(),
        c.idle_rate() * 100.0,
        c.pending_accesses.sum(),
    );

    // Physics sanity: the ring scheme conserves total heat.
    let expect: f64 = (0..params.total_points())
        .map(|g| (g / params.nx) as f64)
        .sum();
    let got = total_heat([&grid[..]]);
    assert!((got - expect).abs() < 1e-6 * expect, "heat not conserved");
}

fn main() {
    let rt = Runtime::with_workers(grain::topology::host::available_cores().max(2));
    println!("heat diffusion on {} workers\n", rt.num_workers());

    // Small case first: prove the dataflow execution is *bit-identical*
    // to the plain sequential loops.
    let small = StencilParams::new(64, 16, 12);
    assert_eq!(run_futurized(&rt, &small), run_sequential(&small));
    println!("correctness: futurized == sequential for nx=64 np=16 nt=12 ✓\n");

    // Same total work (1M points, 10 steps), three granularities: watch
    // task duration, overhead and idle-rate move exactly as in the paper.
    println!("granularity sweep (1M points, 10 steps):");
    for nx in [500, 5_000, 50_000, 500_000] {
        let params = StencilParams::for_total(1_000_000, nx, 10);
        run_and_report(&rt, &params);
    }
    println!(
        "\nFine partitions → many tasks, small t_d, large overhead share;\n\
         coarse partitions → few tasks, load imbalance. The sweet spot is in\n\
         between — that is the paper's Fig. 3/4 story, live on your machine."
    );

    // Task-duration distribution of the last configuration (log2 buckets).
    let h = &rt.counters().exec_histogram;
    println!(
        "\ntask execution-time distribution (last run): median >= {} ns, p99 >= {} ns",
        h.quantile_floor(0.5),
        h.quantile_floor(0.99)
    );
    print!("{}", h.render("ns", 40));
}
