//! Visualize scheduling: run the stencil at two granularities with
//! tracing on and render the worker timelines as text Gantt charts —
//! coarse partitions leave visible idle gaps, fine partitions fill the
//! timeline but pay for it in task-management overhead.
//!
//! ```sh
//! cargo run --release --example trace_timeline
//! ```

use grain::runtime::{Runtime, RuntimeConfig};
use grain::stencil::{run_futurized, StencilParams};

fn run_traced(workers: usize, params: &StencilParams) {
    let rt = Runtime::new(RuntimeConfig {
        workers,
        trace: true,
        ..RuntimeConfig::default()
    });
    let _ = run_futurized(&rt, params);
    rt.wait_idle();
    let trace = rt.take_trace();

    println!(
        "nx={} np={} nt={}: {} events, {} steals, load imbalance {:.2}",
        params.nx,
        params.np,
        params.nt,
        trace.len(),
        trace.steals(),
        trace.load_imbalance(),
    );
    println!("phases per worker: {:?}", trace.phases_per_worker());
    print!("{}", trace.render_gantt(72));
    println!();
}

fn main() {
    let workers = 4;
    println!("worker timelines ('#' busy, '.' partially busy, ' ' idle)\n");

    println!("-- coarse: 2 partitions on {workers} workers (starvation) --");
    run_traced(workers, &StencilParams::for_total(400_000, 200_000, 6));

    println!("-- medium: 16 partitions on {workers} workers --");
    run_traced(workers, &StencilParams::for_total(400_000, 25_000, 6));

    println!("-- fine: 2000 partitions on {workers} workers (overhead) --");
    run_traced(workers, &StencilParams::for_total(400_000, 200, 6));

    println!(
        "The coarse run's rows show long blank stretches (starved workers); the\n\
         fine run's rows are dense but the same physics takes longer overall —\n\
         the Fig. 3 U-curve, drawn as timelines."
    );
}
