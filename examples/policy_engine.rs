//! The APEX-style policy engine (paper §VI) live on the native runtime:
//! grain adaptation and worker throttling driven by the same windowed
//! counters, inside one run.
//!
//! Scenario: the computation starts with far too few partitions for the
//! pool (coarse grain). The throttle policy parks surplus workers
//! immediately (saving "energy" = core-seconds), while the grain policy
//! splits partitions until parallel slack returns — at which point the
//! throttle policy un-parks the workers again.
//!
//! ```sh
//! cargo run --release --example policy_engine
//! ```

use grain::adaptive::{
    run_policy_driven, GrainPolicy, PolicyEngine, ThresholdTuner, ThrottlePolicy, TunerConfig,
};
use grain::runtime::Runtime;
use grain::stencil::StencilParams;

fn main() {
    let workers = 4;
    let rt = Runtime::with_workers(workers);
    let params = StencilParams::new(4_096, 256, 0); // ~1M-point ring
    let total = params.total_points();
    let grid0: Vec<f64> = (0..total).map(|g| (g / params.nx) as f64).collect();

    let mut engine = PolicyEngine::new(vec![
        Box::new(GrainPolicy::new(ThresholdTuner::new(TunerConfig {
            initial_nx: total / 2, // two huge partitions: starved pool
            target_idle_rate: 0.40,
            ..TunerConfig::default()
        }))),
        Box::new(ThrottlePolicy::default()),
    ]);

    println!("policy-driven run on {workers} workers (start: 2 partitions):\n");
    let run = run_policy_driven(
        &rt,
        grid0,
        params.coefficient(),
        total / 2,
        4,
        14,
        &mut engine,
    );

    println!(
        "{:>5} {:>10} {:>8} {:>10} {:>9} {:>12}",
        "epoch", "nx", "workers", "idle-rate", "wall(s)", "core-sec"
    );
    for (i, e) in run.epochs.iter().enumerate() {
        println!(
            "{:>5} {:>10} {:>8} {:>9.1}% {:>9.4} {:>12.4}",
            i,
            e.nx,
            e.active_workers,
            e.idle_rate * 100.0,
            e.wall_s,
            e.core_seconds
        );
    }
    println!(
        "\ntotal energy proxy: {:.4} core-seconds (an unthrottled, unadapted run\n\
         would spend {workers} cores for the whole duration)",
        run.total_core_seconds()
    );

    // Physics must be untouched by all the reconfiguration.
    let expect: f64 = (0..total).map(|g| (g / params.nx) as f64).sum();
    let got: f64 = run.grid.iter().sum();
    assert!((got - expect).abs() < 1e-6 * expect, "heat not conserved");
    println!("heat conserved across {} policy epochs ✓", run.epochs.len());
}
