//! Quickstart: spawn tasks, compose futures, read performance counters.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use grain::runtime::{Runtime, RuntimeConfig};

fn main() {
    // One worker OS thread per host core, Priority Local-FIFO scheduling —
    // the configuration the paper's HPX experiments use.
    let rt = Runtime::new(RuntimeConfig::default());
    println!("runtime started with {} workers", rt.num_workers());

    // 1. Fire-and-forget tasks.
    for i in 0..8 {
        rt.spawn(move |ctx| {
            println!("  task {i} ran on worker {}", ctx.worker);
        });
    }
    rt.wait_idle();

    // 2. `async`-style tasks returning values through futures.
    let a = rt.async_call(|_| 6u64);
    let b = rt.async_call(|_| 7u64);

    // 3. Dataflow: runs when (and only when) its inputs are ready; this is
    //    how the stencil benchmark builds its dependency tree.
    let product = rt.dataflow(&[a, b], |_, vals| *vals[0] * *vals[1]);
    println!("6 * 7 = {}", product.get());

    // 4. The performance monitoring system: every counter the paper's
    //    methodology uses is queryable by its symbolic path at runtime.
    rt.wait_idle();
    for path in [
        "/threads{locality#0/total}/count/cumulative",
        "/threads{locality#0/total}/time/average",
        "/threads{locality#0/total}/time/average-overhead",
        "/threads{locality#0/total}/idle-rate",
        "/threads{locality#0/total}/count/pending-accesses",
    ] {
        let v = rt.registry().query(path).expect("registered counter");
        println!("{path} = {v}");
    }

    // Or discover the whole tree:
    let all = rt.registry().discover("/threads/count/*").unwrap();
    println!(
        "{} count counters registered (per-worker + totals)",
        all.len()
    );
}
