//! Recursive task parallelism with a granularity cutoff: the classic
//! fork/join Fibonacci, expressed with `async_call` + `dataflow` exactly
//! as HPX programs write it. The cutoff (below which the task computes
//! sequentially) is task granularity in its purest form — watch the task
//! count and average task overhead move as you change it.
//!
//! ```sh
//! cargo run --release --example fibonacci
//! ```

use grain::runtime::{Runtime, SharedFuture, TaskContext};

fn fib_seq(n: u64) -> u64 {
    if n < 2 {
        n
    } else {
        let (mut a, mut b) = (0u64, 1u64);
        for _ in 1..n {
            let c = a + b;
            a = b;
            b = c;
        }
        b
    }
}

/// Naive exponential recursion below the cutoff — this is the "work" the
/// tasks do, so the cutoff controls task size.
fn fib_naive(n: u64) -> u64 {
    if n < 2 {
        n
    } else {
        fib_naive(n - 1) + fib_naive(n - 2)
    }
}

fn fib_task(ctx: &TaskContext<'_>, n: u64, cutoff: u64) -> SharedFuture<u64> {
    if n <= cutoff {
        return SharedFuture::ready(fib_naive(n));
    }
    let left = {
        let inner = ctx.async_call(move |ctx| fib_task(ctx, n - 1, cutoff));
        flatten(inner)
    };
    let right = {
        let inner = ctx.async_call(move |ctx| fib_task(ctx, n - 2, cutoff));
        flatten(inner)
    };
    let (promise, out) = grain::runtime::channel();
    ctx.dataflow(&[left, right], move |_, vals| {
        promise.set(*vals[0] + *vals[1]);
    });
    out
}

/// Future<Future<T>> → Future<T>.
fn flatten(outer: SharedFuture<SharedFuture<u64>>) -> SharedFuture<u64> {
    let (promise, out) = grain::runtime::channel();
    outer.on_ready(move |inner| {
        inner.on_ready(move |v| promise.set(**v));
    });
    out
}

fn main() {
    let rt = Runtime::with_workers(grain::topology::host::available_cores().max(2));
    let n = 30u64;
    let expect = fib_seq(n);

    println!("fib({n}) with recursive dataflow tasks, varying the cutoff:\n");
    for cutoff in [10u64, 16, 22, 28] {
        rt.reset_counters();
        let t0 = std::time::Instant::now();
        let result = rt.async_call(move |ctx| fib_task(ctx, n, cutoff));
        let value = *flatten(result).get();
        let wall = t0.elapsed().as_secs_f64();
        rt.wait_idle();
        assert_eq!(value, expect);
        let c = rt.counters();
        println!(
            "cutoff {cutoff:>2}: {value} in {wall:>7.4}s | tasks={:<6} t_d={:>9.1}ns overhead/task={:>9.1}ns",
            c.tasks.sum(),
            c.task_duration_ns(),
            c.task_overhead_ns(),
        );
    }
    println!(
        "\nSmall cutoffs spawn thousands of tiny tasks whose management overhead\n\
         dwarfs their work; large cutoffs starve the workers. Same U-curve, no\n\
         stencil required."
    );
}
