//! Job server: submit multi-tenant jobs, cancel one, watch per-job
//! counters.
//!
//! ```sh
//! cargo run --release --example job_server
//! ```

use grain::service::{JobPriority, JobService, JobSpec, JobState};
use std::time::Duration;

fn main() {
    // A service owns the runtime: clients submit whole task DAGs as
    // jobs instead of spawning tasks directly.
    let service = JobService::with_workers(4);

    // 1. Two tenants submit work concurrently. Each job's tasks join the
    //    job's group, so every job is tracked (and metered) in isolation.
    let render = service.submit(
        JobSpec::new("render", "tenant-a").priority(JobPriority::Interactive),
        |ctx| {
            for frame in 0..32u64 {
                ctx.spawn(move |_| {
                    std::hint::black_box(frame * frame);
                });
            }
        },
    );
    let index = service.submit(
        JobSpec::new("index", "tenant-b").estimated_tasks(65),
        |ctx| {
            for shard in 0..64u64 {
                ctx.spawn(move |_| {
                    std::hint::black_box(shard.pow(3));
                });
            }
        },
    );

    // 2. A runaway job: cooperative tasks poll their cancellation token.
    let runaway = service.submit(JobSpec::new("runaway", "tenant-b"), |ctx| {
        ctx.spawn(|c| {
            while !c.is_cancelled() {
                std::thread::sleep(Duration::from_micros(100));
            }
        });
    });
    std::thread::sleep(Duration::from_millis(5));
    runaway.cancel();

    // 3. A deadline: the service cancels the job when its wall-clock
    //    budget (measured from submission) runs out.
    let slow = service.submit(
        JobSpec::new("slow", "tenant-a").deadline(Duration::from_millis(10)),
        |ctx| {
            ctx.spawn(|c| {
                while !c.is_cancelled() {
                    std::thread::sleep(Duration::from_micros(100));
                }
            });
        },
    );

    // 4. Join per job — not per runtime. Other tenants' jobs keep the
    //    workers busy without holding these waits up.
    for job in [&render, &index, &runaway, &slow] {
        let outcome = job.wait();
        println!(
            "{:<12} {:<9} tasks: {} completed, {} skipped, turnaround {:?}",
            job.instance(),
            outcome.state.to_string(),
            outcome.tasks_completed,
            outcome.tasks_skipped,
            outcome.turnaround,
        );
    }
    assert_eq!(runaway.wait().state, JobState::Cancelled);
    assert_eq!(slow.wait().state, JobState::TimedOut);

    // 5. Every job has its own counter namespace on the service registry.
    println!("\ncounters of {}:", index.instance());
    for path in index.counter_paths() {
        let v = service.registry().query(&path).expect("registered");
        println!("  {path} = {}", v.value);
    }

    // 6. Plus the service-wide surface.
    println!("\nservice counters:");
    for path in [
        "/service/jobs/submitted",
        "/service/jobs/completed",
        "/service/jobs/cancelled",
        "/service/jobs/timed-out",
        "/service/time/turnaround",
    ] {
        let v = service.registry().query(path).expect("registered");
        println!("  {path} = {:.0}", v.value);
    }
}
