//! Explore the performance-counter tree: run a small workload, then
//! discover and dump every registered counter — per-worker instances,
//! totals and derived metrics — the way HPX's command-line counter
//! interface does after a run.
//!
//! ```sh
//! cargo run --release --example counter_explorer
//! ```

use grain::counters::Snapshot;
use grain::runtime::Runtime;
use grain::stencil::{run_futurized, StencilParams};

fn main() {
    let rt = Runtime::with_workers(grain::topology::host::available_cores().max(2));
    let params = StencilParams::for_total(500_000, 5_000, 10);

    // Interval measurement: snapshot → work → snapshot → delta, the
    // windowed form the paper's adaptivity goal needs (§II-A).
    let before = Snapshot::capture_all(rt.registry());
    let _ = run_futurized(&rt, &params);
    rt.wait_idle();
    let after = Snapshot::capture_all(rt.registry());
    let window = before.delta(&after);

    println!("=== full counter dump (cumulative since start) ===");
    for path in rt.registry().paths() {
        let v = rt.registry().query(&path).unwrap();
        println!("{path:<64} = {v}");
    }

    println!("\n=== the same counters over the measured window ===");
    for (path, v) in window.iter() {
        println!("{path:<64} = {v}");
    }

    let ir = window
        .windowed_ratio(
            "/threads{locality#0/total}/time/cumulative-exec",
            "/threads{locality#0/total}/time/cumulative-func",
        )
        .unwrap_or(0.0);
    println!(
        "\nwindowed idle-rate (Eq. 1 over the interval): {:.2}%",
        ir * 100.0
    );

    println!("\n=== wildcard discovery ===");
    for pat in ["/threads/idle-rate", "/threads/count/pending-*"] {
        let hits = rt.registry().discover(pat).unwrap();
        println!("{pat} -> {} counters", hits.len());
        for h in hits {
            println!("   {h}");
        }
    }
}
