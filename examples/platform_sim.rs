//! Cross-platform what-if analysis with the simulator: take one stencil
//! configuration and ask how it would behave on each of the paper's
//! Table I machines — the kind of question the simulated substrate
//! exists to answer on a laptop.
//!
//! ```sh
//! cargo run --release --example platform_sim
//! ```

use grain::sim::{simulate, SimConfig};
use grain::stencil::{stencil_workload, StencilParams};
use grain::topology::presets;

fn main() {
    // 10M points, 10 steps, 20k-point partitions.
    let params = StencilParams::for_total(10_000_000, 20_000, 10);
    let wl = stencil_workload(&params);
    println!(
        "stencil: {} points x {} steps, nx={} ({} tasks)\n",
        params.total_points(),
        params.nt,
        params.nx,
        wl.len()
    );

    println!(
        "{:<14} {:>6} {:>10} {:>10} {:>10} {:>12}",
        "platform", "cores", "exec(s)", "t_d", "idle-rate", "stolen"
    );
    for platform in presets::table1() {
        for &cores in &[1usize, platform.usable_cores / 2, platform.usable_cores] {
            let r = simulate(&platform, cores, &wl, &SimConfig::default());
            println!(
                "{:<14} {:>6} {:>10.3} {:>9.1}us {:>9.1}% {:>12}",
                platform.name,
                cores,
                r.wall_seconds(),
                r.task_duration_ns() / 1e3,
                r.idle_rate() * 100.0,
                r.stolen,
            );
        }
        println!();
    }
    println!(
        "The Xeon parts saturate their memory bandwidth within ~8 cores; the Phi's\n\
         slow in-order cores keep scaling but pay far more per task — the paper's\n\
         platform contrast in one table."
    );
}
